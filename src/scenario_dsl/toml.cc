#include "scenario_dsl/toml.h"

#include <cctype>
#include <cstdlib>
#include <set>

namespace greencc::dsl {

namespace {

bool is_bare_key_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-';
}

bool is_space(char c) { return c == ' ' || c == '\t'; }

/// Strips a trailing comment (a '#' outside any string literal) and
/// trailing whitespace from one physical line.
std::string strip_comment(std::string_view line, int line_no) {
  std::string out;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        out += c;
        if (i + 1 < line.size()) out += line[++i];
        continue;
      }
      if (c == '"') in_string = false;
      out += c;
      continue;
    }
    if (c == '"') {
      in_string = true;
      out += c;
      continue;
    }
    if (c == '#') break;
    out += c;
  }
  if (in_string) throw ParseError(line_no, "unterminated string");
  while (!out.empty() && is_space(out.back())) out.pop_back();
  return out;
}

/// Net bracket depth of a line, ignoring brackets inside strings. Used to
/// detect arrays that continue onto the next physical line.
int bracket_depth_delta(std::string_view line) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
        continue;
      }
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '[') ++depth;
    else if (c == ']') --depth;
  }
  return depth;
}

/// Recursive-descent parser for a single value (possibly spanning joined
/// lines). `base_line` is the line the value starts on; embedded newlines
/// from joined continuation lines advance the reported line.
class ValueParser {
 public:
  ValueParser(std::string_view text, int base_line)
      : text_(text), base_line_(base_line) {}

  TomlValue parse() {
    TomlValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ParseError(line(), "trailing characters after value");
    }
    return v;
  }

 private:
  int line() const {
    int n = base_line_;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++n;
    }
    return n;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (is_space(text_[pos_]) || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  TomlValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) throw ParseError(line(), "missing value");
    const char c = text_[pos_];
    if (c == '"') return parse_string();
    if (c == '[') return parse_array();
    if (c == '{') {
      throw ParseError(line(), "inline tables are not supported");
    }
    return parse_scalar();
  }

  TomlValue parse_string() {
    TomlValue v;
    v.kind = TomlValue::Kind::kString;
    v.line = line();
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          throw ParseError(v.line, "unterminated string");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default:
            throw ParseError(v.line, std::string("unsupported escape '\\") +
                                         esc + "' in string");
        }
      }
      v.str += c;
    }
    if (pos_ >= text_.size()) throw ParseError(v.line, "unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  TomlValue parse_array() {
    TomlValue v;
    v.kind = TomlValue::Kind::kArray;
    v.line = line();
    ++pos_;  // '['
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size()) {
        throw ParseError(v.line, "unterminated array");
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return v;
      }
      v.array.push_back(parse_value());
      skip_ws();
      if (pos_ >= text_.size()) {
        throw ParseError(v.line, "unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] != ']') {
        throw ParseError(line(), "expected ',' or ']' in array");
      }
    }
  }

  TomlValue parse_scalar() {
    const int at = line();
    std::size_t end = pos_;
    while (end < text_.size() && text_[end] != ',' && text_[end] != ']' &&
           text_[end] != '\n') {
      ++end;
    }
    std::string token(text_.substr(pos_, end - pos_));
    while (!token.empty() && is_space(token.back())) token.pop_back();
    pos_ += token.size();
    if (token.empty()) throw ParseError(at, "missing value");

    TomlValue v;
    v.line = at;
    if (token == "true" || token == "false") {
      v.kind = TomlValue::Kind::kBool;
      v.boolean = (token == "true");
      return v;
    }
    // Numbers: TOML-style underscores are cosmetic separators.
    std::string digits;
    digits.reserve(token.size());
    for (const char c : token) {
      if (c != '_') digits += c;
    }
    const bool looks_int =
        digits.find_first_not_of("+-0123456789") == std::string::npos &&
        digits.find_first_of("0123456789") != std::string::npos;
    char* endp = nullptr;
    if (looks_int) {
      const long long parsed = std::strtoll(digits.c_str(), &endp, 10);
      if (endp != nullptr && *endp == '\0') {
        v.kind = TomlValue::Kind::kInt;
        v.integer = parsed;
        v.number = static_cast<double>(parsed);
        return v;
      }
    }
    const double parsed = std::strtod(digits.c_str(), &endp);
    if (endp != nullptr && *endp == '\0' && endp != digits.c_str()) {
      v.kind = TomlValue::Kind::kFloat;
      v.number = parsed;
      return v;
    }
    throw ParseError(at, "invalid value '" + token + "'");
  }

  std::string_view text_;
  int base_line_;
  std::size_t pos_ = 0;
};

/// Splits a [table.header] path into bare-key parts.
std::vector<std::string> split_path(std::string_view path, int line_no) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : path) {
    if (c == '.') {
      if (current.empty()) {
        throw ParseError(line_no, "empty component in table name");
      }
      parts.push_back(current);
      current.clear();
      continue;
    }
    if (!is_bare_key_char(c)) {
      throw ParseError(line_no, std::string("invalid character '") + c +
                                    "' in table name");
    }
    current += c;
  }
  if (current.empty()) {
    throw ParseError(line_no, "empty component in table name");
  }
  parts.push_back(current);
  return parts;
}

std::string join_path(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '.';
    out += p;
  }
  return out;
}

}  // namespace

const char* TomlValue::kind_name() const {
  switch (kind) {
    case Kind::kString: return "string";
    case Kind::kInt: return "integer";
    case Kind::kFloat: return "float";
    case Kind::kBool: return "boolean";
    case Kind::kArray: return "array";
    case Kind::kTable: return "table";
  }
  return "value";
}

double TomlValue::as_number() const {
  if (!is_number()) {
    throw ParseError(line, std::string("expected a number, got ") +
                               kind_name());
  }
  return is_int() ? static_cast<double>(integer) : number;
}

TomlValue parse_toml(std::string_view text) {
  TomlValue root;
  root.kind = TomlValue::Kind::kTable;
  root.line = 1;

  TomlValue* current = &root;
  std::set<std::string> defined_tables;

  std::size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    if (pos == text.size()) break;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    ++line_no;
    const int start_line = line_no;
    std::string line = strip_comment(text.substr(pos, eol - pos), line_no);
    pos = eol + 1;

    // Join continuation lines while an array literal is open.
    int depth = bracket_depth_delta(line);
    // A table header [x] / [[x]] is balanced on its own line; only a
    // key = [ ... value can carry depth over.
    while (depth > 0) {
      if (pos > text.size() || line_no >= 100000) {
        throw ParseError(start_line, "unterminated array");
      }
      std::size_t next_eol = text.find('\n', pos);
      if (next_eol == std::string_view::npos) next_eol = text.size();
      ++line_no;
      const std::string more =
          strip_comment(text.substr(pos, next_eol - pos), line_no);
      const bool at_end = next_eol >= text.size();
      pos = next_eol + 1;
      line += '\n';
      line += more;
      depth += bracket_depth_delta(more);
      if (at_end && depth > 0) {
        throw ParseError(start_line, "unterminated array");
      }
    }

    // Skip blank lines.
    std::size_t i = 0;
    while (i < line.size() && is_space(line[i])) ++i;
    if (i == line.size()) continue;

    if (line[i] == '[') {
      const bool is_array_table =
          i + 1 < line.size() && line[i + 1] == '[';
      const std::size_t open = i + (is_array_table ? 2 : 1);
      const std::string closer = is_array_table ? "]]" : "]";
      const std::size_t close = line.find(closer, open);
      if (close == std::string::npos) {
        throw ParseError(start_line, "unterminated table header");
      }
      if (close + closer.size() != line.size()) {
        throw ParseError(start_line,
                         "trailing characters after table header");
      }
      std::string path_text = line.substr(open, close - open);
      // Trim interior whitespace around the path.
      while (!path_text.empty() && is_space(path_text.front())) {
        path_text.erase(path_text.begin());
      }
      while (!path_text.empty() && is_space(path_text.back())) {
        path_text.pop_back();
      }
      const std::vector<std::string> parts =
          split_path(path_text, start_line);

      // Walk/create intermediate tables (descending into the last element
      // of any array-of-tables on the way).
      TomlValue* node = &root;
      for (std::size_t p = 0; p + 1 < parts.size(); ++p) {
        TomlValue& child = node->table[parts[p]];
        if (child.line == 0) {
          child.kind = TomlValue::Kind::kTable;
          child.line = start_line;
        }
        if (child.is_array()) {
          if (child.array.empty() || !child.array.back().is_table()) {
            throw ParseError(start_line,
                             "'" + parts[p] + "' is not a table");
          }
          node = &child.array.back();
        } else if (child.is_table()) {
          node = &child;
        } else {
          throw ParseError(start_line, "'" + parts[p] + "' is not a table");
        }
      }

      const std::string& leaf = parts.back();
      TomlValue& slot = node->table[leaf];
      if (is_array_table) {
        if (slot.line == 0) {
          slot.kind = TomlValue::Kind::kArray;
          slot.line = start_line;
        } else if (!slot.is_array()) {
          throw ParseError(start_line, "cannot redefine '" +
                                           join_path(parts) +
                                           "' as an array of tables");
        }
        TomlValue element;
        element.kind = TomlValue::Kind::kTable;
        element.line = start_line;
        slot.array.push_back(std::move(element));
        current = &slot.array.back();
      } else {
        if (slot.line == 0) {
          slot.kind = TomlValue::Kind::kTable;
          slot.line = start_line;
        } else if (!slot.is_table()) {
          throw ParseError(start_line, "cannot redefine '" +
                                           join_path(parts) +
                                           "' as a table");
        }
        const std::string full = join_path(parts);
        if (!defined_tables.insert(full).second) {
          throw ParseError(start_line, "duplicate table [" + full + "]");
        }
        current = &slot;
      }
      continue;
    }

    // key = value
    std::size_t key_end = i;
    while (key_end < line.size() && is_bare_key_char(line[key_end])) {
      ++key_end;
    }
    if (key_end == i) {
      throw ParseError(start_line, "expected a key or table header");
    }
    const std::string key = line.substr(i, key_end - i);
    std::size_t eq = key_end;
    while (eq < line.size() && is_space(line[eq])) ++eq;
    if (eq >= line.size() || line[eq] != '=') {
      if (eq < line.size() && line[eq] == '.') {
        throw ParseError(start_line, "dotted keys are not supported");
      }
      throw ParseError(start_line, "expected '=' after key '" + key + "'");
    }
    if (current->table.count(key) != 0) {
      throw ParseError(start_line, "duplicate key '" + key + "'");
    }
    ValueParser vp(std::string_view(line).substr(eq + 1), start_line);
    TomlValue value = vp.parse();
    value.line = start_line;
    current->table.emplace(key, std::move(value));
  }

  return root;
}

}  // namespace greencc::dsl
