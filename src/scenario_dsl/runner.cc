#include "scenario_dsl/runner.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "app/config_canon.h"
#include "app/parallel_runner.h"
#include "robust/journal.h"
#include "scenario_dsl/compile.h"
#include "scenario_dsl/sweep.h"
#include "stats/csv.h"
#include "stats/stats.h"

namespace greencc::dsl {

namespace {

// The aggregated metric slots. Scenario runs fill the first block,
// workload runs the second; the journal stores the whole vector so one
// payload format covers both modes.
enum Metric : std::size_t {
  kEnergyJoules = 0,
  kPowerWatts,
  kDurationSec,
  kFctSec,
  kGoodputGbps,
  kDeliveredBytes,
  kRetransmissions,
  kTimeouts,
  kSwitchDrops,
  kRxDrops,
  kEcnMarks,
  kJoulesPerGb,
  kMeanSlowdown,
  kP99Slowdown,
  kMiceP99Slowdown,
  kElephantMeanSlowdown,
  kFlowsStarted,
  kFlowsCompleted,
  kCompleted,
  kMetricCount,
};

using MetricVec = std::array<double, kMetricCount>;

struct MetricName {
  const char* name;
  Metric id;
};

constexpr MetricName kMetricNames[] = {
    {"energy_joules", kEnergyJoules},
    {"power_watts", kPowerWatts},
    {"duration_sec", kDurationSec},
    {"fct_sec", kFctSec},
    {"goodput_gbps", kGoodputGbps},
    {"delivered_bytes", kDeliveredBytes},
    {"retransmissions", kRetransmissions},
    {"timeouts", kTimeouts},
    {"switch_drops", kSwitchDrops},
    {"rx_drops", kRxDrops},
    {"ecn_marks", kEcnMarks},
    {"joules_per_gb", kJoulesPerGb},
    {"mean_slowdown", kMeanSlowdown},
    {"p99_slowdown", kP99Slowdown},
    {"mice_p99_slowdown", kMiceP99Slowdown},
    {"elephant_mean_slowdown", kElephantMeanSlowdown},
    {"flows_started", kFlowsStarted},
    {"flows_completed", kFlowsCompleted},
    {"completed", kCompleted},
};

bool lookup_metric(const std::string& name, Metric* out) {
  for (const MetricName& entry : kMetricNames) {
    if (name == entry.name) {
      *out = entry.id;
      return true;
    }
  }
  return false;
}

MetricVec metrics_from_scenario(const app::ScenarioResult& run) {
  MetricVec m{};
  m[kEnergyJoules] = run.total_energy.joules();
  m[kPowerWatts] = run.avg_power.watts();
  m[kDurationSec] = run.duration_sec;
  m[kFctSec] = run.flows.empty() ? 0.0 : run.flows[0].fct_sec;
  m[kGoodputGbps] = run.flows.empty() ? 0.0 : run.flows[0].avg_rate.gbps();
  std::int64_t delivered = 0, retx = 0, timeouts = 0;
  for (const app::FlowResult& flow : run.flows) {
    delivered += flow.delivered_bytes.count();
    retx += flow.retransmissions;
    timeouts += flow.timeouts;
  }
  m[kDeliveredBytes] = static_cast<double>(delivered);
  m[kRetransmissions] = static_cast<double>(retx);
  m[kTimeouts] = static_cast<double>(timeouts);
  m[kSwitchDrops] = static_cast<double>(run.bottleneck.dropped);
  m[kRxDrops] = static_cast<double>(run.rx_backlog.dropped);
  m[kEcnMarks] = static_cast<double>(run.bottleneck.ecn_marked);
  const double gb = static_cast<double>(delivered) / 1e9;
  m[kJoulesPerGb] = gb > 0 ? run.total_energy.joules() / gb : 0.0;
  m[kCompleted] = run.all_completed ? 1.0 : 0.0;
  return m;
}

MetricVec metrics_from_workload(const app::WorkloadResult& run) {
  MetricVec m{};
  m[kEnergyJoules] = run.total_energy.joules();
  m[kGoodputGbps] = run.goodput.gbps();
  m[kJoulesPerGb] = run.energy_intensity.joules_per_byte() * 1e9;
  m[kMeanSlowdown] = run.mean_slowdown;
  m[kP99Slowdown] = run.p99_slowdown;
  m[kMiceP99Slowdown] = run.mice_p99_slowdown;
  m[kElephantMeanSlowdown] = run.elephant_mean_slowdown;
  m[kFlowsStarted] = static_cast<double>(run.flows_started);
  m[kFlowsCompleted] = static_cast<double>(run.flows_completed);
  // An open-loop run always covers its horizon; "completed" means every
  // admitted flow finished inside it.
  m[kCompleted] = run.flows_completed == run.flows_started ? 1.0 : 0.0;
  return m;
}

/// Journal payload: the full metric vector, %.17g each, space-separated.
/// %.17g round-trips IEEE doubles exactly, so resumed sweeps aggregate
/// bit-identical values.
std::string encode_metrics(const MetricVec& m) {
  std::string out;
  char buf[40];
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    std::snprintf(buf, sizeof buf, "%.17g", m[i]);
    if (i != 0) out += ' ';
    out += buf;
  }
  return out;
}

bool decode_metrics(const std::string& payload, MetricVec& m) {
  std::istringstream in(payload);
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    std::string token;
    if (!(in >> token)) return false;
    char* end = nullptr;
    m[i] = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
  }
  return true;
}

/// Fingerprint binding journal and CSV to everything that can change a
/// number: the canonical form of every compiled cell (config + flows via
/// app::config_canon) plus base seed and repeats. Supervision knobs and
/// jobs are deliberately absent — they cannot change what a completed
/// cell measured.
std::uint64_t sweep_config_hash(const ScenarioDoc& doc,
                                const std::vector<CompiledCell>& cells) {
  std::ostringstream canon;
  canon << "dsl-sweep/1 name=" << doc.name << " seed=" << doc.seed
        << " repeats=" << doc.repeats << ";";
  for (const CompiledCell& cell : cells) {
    if (cell.is_workload) {
      const app::WorkloadConfig& wl = cell.open_loop.config();
      char buf[200];
      std::snprintf(buf, sizeof buf,
                    "workload cca=%s mtu=%" PRId64 " rate=%.17g load=%.17g "
                    "hosts=%d horizon=%" PRId64 " sizes=%s;",
                    wl.cca.c_str(), wl.mtu_bytes.count(),
                    wl.bottleneck_rate.bps(), wl.load, wl.sender_hosts,
                    wl.horizon.ns(),
                    wl.sizes != nullptr ? wl.sizes->name().c_str() : "?");
      canon << buf;
    } else {
      canon << app::canonical_string(cell.scenario.config(),
                                     cell.scenario.flows());
    }
  }
  return robust::fnv1a64(canon.str());
}

int format_precision(const std::string& format, int fallback) {
  if (format.size() < 2) return fallback;
  return std::atoi(format.c_str() + 1);
}

/// Renders one axis-echo cell into the writer.
void emit_axis_cell(stats::CsvWriter& csv, const TomlValue& v,
                    const std::string& format) {
  if (format.empty() || format == "str") {
    switch (v.kind) {
      case TomlValue::Kind::kString: csv.text(v.str); return;
      case TomlValue::Kind::kInt: csv.integer(v.integer); return;
      case TomlValue::Kind::kFloat: csv.general(v.number, 12); return;
      case TomlValue::Kind::kBool: csv.yesno(v.boolean); return;
      default: csv.text(""); return;
    }
  }
  if (format == "int") {
    csv.integer(v.is_int() ? v.integer
                           : static_cast<std::int64_t>(v.as_number()));
    return;
  }
  if (format == "yesno") {
    csv.yesno(v.is_bool() ? v.boolean : v.as_number() != 0.0);  // lint-allow: float-eq (exact 0/1 flag)
    return;
  }
  if (format[0] == 'f') {
    csv.fixed(v.as_number(), format_precision(format, 2));
    return;
  }
  csv.general(v.as_number(), format_precision(format, 12));
}

}  // namespace

bool is_known_metric(const std::string& name) {
  Metric ignored;
  return lookup_metric(name, &ignored);
}

ScenarioDoc effective_doc(const ScenarioDoc& doc, const RunOptions& options) {
  ScenarioDoc out = doc;
  try {
    for (const std::string& assignment : options.overrides) {
      apply_override(out, assignment);
    }
  } catch (const ParseError& e) {
    throw DslError(doc.source_file.empty() ? "<overrides>" : doc.source_file,
                   0, e.message());
  }
  if (options.repeats > 0) out.repeats = options.repeats;
  if (options.have_seed) out.seed = options.seed;
  if (options.audit) {
    out.audit_interval = sim::SimTime::milliseconds(10);
  }
  if (!options.csv_path.empty()) out.output.csv = options.csv_path;
  return out;
}

PackPlan plan_sweep(const ScenarioDoc& doc, const RunOptions& options) {
  const ScenarioDoc base = effective_doc(doc, options);
  const SweepGrid grid = expand_sweep(base);

  std::vector<CompiledCell> compiled;
  compiled.reserve(grid.cells.size());
  for (const SweepCell& cell : grid.cells) {
    try {
      compiled.push_back(compile_scenario(doc_for_cell(base, cell)));
    } catch (const ParseError& e) {
      throw DslError(base.source_file, e.line(),
                     "cell " + std::to_string(cell.index) + ": " +
                         e.message());
    }
  }

  PackPlan plan;
  plan.cells = grid.cells.size();
  plan.repeats = static_cast<std::size_t>(base.repeats);
  plan.runs = plan.cells * plan.repeats;
  for (const AxisDoc& axis : base.axes) {
    plan.axes.emplace_back(axis.name, axis.values.size());
  }
  plan.config_hash = sweep_config_hash(base, compiled);
  plan.csv_path = base.output.csv;
  return plan;
}

SweepOutcome run_sweep(const ScenarioDoc& doc, const RunOptions& options) {
  const ScenarioDoc base = effective_doc(doc, options);
  const SweepGrid grid = expand_sweep(base);
  const auto repeats = static_cast<std::size_t>(base.repeats);
  const std::size_t total = grid.cells.size() * repeats;

  // Compile every cell up front: validates the whole pack before the
  // first simulation starts, and gives the config hash its input.
  std::vector<CompiledCell> compiled;
  compiled.reserve(grid.cells.size());
  for (const SweepCell& cell : grid.cells) {
    try {
      compiled.push_back(compile_scenario(doc_for_cell(base, cell)));
    } catch (const ParseError& e) {
      throw DslError(base.source_file, e.line(),
                     "cell " + std::to_string(cell.index) + ": " +
                         e.message());
    }
  }

  std::vector<MetricVec> runs(total);
  std::vector<char> present(total, 0);

  robust::SupervisorOptions sup;
  sup.jobs = options.jobs;
  sup.max_attempts = std::max(options.max_attempts, 1);
  sup.cell_deadline_sec = options.cell_deadline_sec;
  sup.event_budget = options.event_budget;
  sup.journal_path = options.journal_path;
  sup.config_hash = sweep_config_hash(base, compiled);
  sup.resume = options.resume;
  if (options.progress) {
    const std::string name = base.name;
    sup.progress = [name, repeats](std::size_t done, std::size_t n,
                                   std::size_t index, double secs) {
      std::fprintf(stderr, "  %s: [%3zu/%zu] cell=%zu rep=%zu  %6.2fs\n",
                   name.c_str(), done, n, index / repeats, index % repeats,
                   secs);
    };
  }

  robust::CellHooks hooks;
  hooks.run = [&](std::size_t t, robust::CellContext& ctx) -> std::string {
    const std::size_t cell = t / repeats;
    const std::size_t rep = t % repeats;
    const std::uint64_t seed = app::derive_seed(base.seed, cell, rep);
    ctx.set_seed(seed);

    if (compiled[cell].is_workload) {
      app::WorkloadBuilder wl = compiled[cell].open_loop;
      wl.seed(seed);
      const app::WorkloadResult result = wl.run();
      const MetricVec m = metrics_from_workload(result);
      std::string payload = encode_metrics(m);
      runs[t] = m;
      present[t] = 1;
      return payload;
    }

    app::ScenarioBuilder builder = compiled[cell].scenario;
    builder.seed(seed);
    const std::unique_ptr<app::Scenario> scenario = builder.build();
    // The guard is constructed after the scenario so it is destroyed
    // first, while the simulator is still alive for its snapshot.
    auto watch = ctx.watch(scenario->simulator());
    const app::ScenarioResult result = scenario->run();
    if (ctx.cut() || result.stop_reason == "stopped" ||
        result.stop_reason == "budget_exhausted") {
      return {};  // truncated run: neither published nor journaled
    }
    const MetricVec m = metrics_from_scenario(result);
    std::string payload = encode_metrics(m);
    runs[t] = m;
    present[t] = 1;
    return payload;
  };
  hooks.restore = [&](std::size_t t, const std::string& payload) {
    MetricVec m{};
    if (!decode_metrics(payload, m)) return;  // malformed: stays absent
    runs[t] = m;
    present[t] = 1;
  };

  robust::SweepSupervisor supervisor(std::move(sup));

  SweepOutcome outcome;
  outcome.report = supervisor.run(total, hooks);
  outcome.cells = grid.cells.size();
  outcome.repeats = repeats;
  outcome.csv_path = base.output.csv;

  // Serial aggregation in cell order once the pool drained: independent
  // of thread count and completion order. Absent repeats are skipped; a
  // cell with no surviving repeat carries zeros — the health report, not
  // the numbers, discloses the gap.
  std::vector<std::string> headers;
  headers.reserve(base.output.columns.size());
  for (const OutputColumn& col : base.output.columns) {
    headers.push_back(col.header);
  }
  stats::CsvWriter csv(headers);

  // Axis name -> position, for axis echo columns.
  std::vector<std::string> axis_names;
  for (const AxisDoc& axis : base.axes) axis_names.push_back(axis.name);

  for (const SweepCell& cell : grid.cells) {
    std::array<stats::Summary, kMetricCount> agg;
    bool all_done = true;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      const std::size_t t = cell.index * repeats + rep;
      if (!present[t]) {
        all_done = false;
        continue;
      }
      all_done &= runs[t][kCompleted] != 0.0;  // lint-allow: float-eq (exact 0/1 flag)
      for (std::size_t m = 0; m < kMetricCount; ++m) {
        agg[m].add(runs[t][m]);
      }
    }

    // Paper-scale factor: scale columns report the run as if the first
    // flow had transferred scale_to bytes (the legacy 50 GB equivalent).
    double factor = 1.0;
    if (base.output.scale_to.count() > 0 && !compiled[cell.index].is_workload &&
        !compiled[cell.index].scenario.flows().empty()) {
      const std::int64_t basis =
          compiled[cell.index].scenario.flows()[0].bytes.count();
      if (basis > 0) {
        factor = static_cast<double>(base.output.scale_to.count()) /
                 static_cast<double>(basis);
      }
    }

    for (const OutputColumn& col : base.output.columns) {
      if (!col.axis.empty()) {
        std::size_t a = 0;
        while (a < axis_names.size() && axis_names[a] != col.axis) ++a;
        emit_axis_cell(csv, axis_value(base, cell, a), col.format);
        continue;
      }
      Metric id{};
      lookup_metric(col.metric, &id);  // validated at parse time
      if (id == kCompleted && (col.format.empty() || col.format == "yesno")) {
        csv.yesno(all_done);
        continue;
      }
      double value = col.agg == "stddev" ? agg[id].stddev() : agg[id].mean();
      if (col.scale) value = value * factor;
      const std::string& format = col.format;
      if (format.empty() || format[0] == 'g') {
        csv.general(value, format_precision(format, 12));
      } else if (format[0] == 'f') {
        csv.fixed(value, format_precision(format, 2));
      } else if (format == "int") {
        csv.integer(static_cast<std::int64_t>(value));
      } else if (format == "yesno") {
        csv.yesno(value != 0.0);  // lint-allow: float-eq (exact 0/1 flag)
      } else {
        csv.text("");
      }
    }
    csv.end_row();
  }

  csv.write_file(outcome.csv_path);
  return outcome;
}

}  // namespace greencc::dsl
