#include "scenario_dsl/pack.h"

#include <algorithm>
#include <filesystem>

#include "robust/journal.h"
#include "scenario_dsl/runner.h"

namespace greencc::dsl {

std::vector<std::string> list_scenarios(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  fs::recursive_directory_iterator it(dir, ec);
  if (ec) return files;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".toml") continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

ValidationSummary validate_pack(const std::vector<std::string>& files) {
  ValidationSummary summary;
  summary.files = files.size();
  for (const std::string& file : files) {
    try {
      const ScenarioDoc doc = load_scenario_file(file);
      const PackPlan plan = plan_sweep(doc, RunOptions{});
      summary.cells += plan.cells;
      summary.runs += plan.runs;
    } catch (const DslError& e) {
      summary.issues.push_back({file, e.what()});
    } catch (const std::exception& e) {
      summary.issues.push_back({file, file + ": " + e.what()});
    }
  }
  return summary;
}

std::vector<std::string> sample_pack(const std::vector<std::string>& files,
                                     std::size_t count, std::uint64_t seed) {
  if (count >= files.size()) return files;
  struct Ranked {
    std::uint64_t rank;
    std::size_t index;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    ranked.push_back(
        {robust::fnv1a64(files[i] + ":" + std::to_string(seed)), i});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    return a.rank != b.rank ? a.rank < b.rank : a.index < b.index;
  });
  std::vector<std::size_t> picked;
  picked.reserve(count);
  for (std::size_t i = 0; i < count; ++i) picked.push_back(ranked[i].index);
  std::sort(picked.begin(), picked.end());
  std::vector<std::string> out;
  out.reserve(count);
  for (const std::size_t i : picked) out.push_back(files[i]);
  return out;
}

}  // namespace greencc::dsl
