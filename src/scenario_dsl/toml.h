#pragma once

// Minimal TOML-subset parser for the scenario DSL. Hand-rolled (the build
// takes no external dependencies) and deliberately small: exactly the
// constructs scenario files need, with line-accurate errors for everything
// else.
//
// Supported:
//   [table.path] headers, [[array.of.tables]] headers,
//   key = "string" | integer | float | true/false | [array, ...]
//   arrays may nest one level (zip axis tuples) and span multiple lines,
//   # comments, blank lines.
// Rejected with a ParseError naming the line:
//   inline tables {..}, dotted keys, duplicate keys, redefined tables,
//   unterminated strings/arrays, trailing garbage after a value.
//
// Every parsed value carries the 1-based line it started on so the schema
// layer above (doc.cc) can report "file:line: unknown key 'x'" instead of
// pointing at the whole file.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace greencc::dsl {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line),
        message_(message) {}
  int line() const { return line_; }
  /// The message without the "line N: " prefix (DslError re-prefixes it
  /// with the file name).
  const std::string& message() const { return message_; }

 private:
  int line_;
  std::string message_;
};

struct TomlValue {
  enum class Kind { kString, kInt, kFloat, kBool, kArray, kTable };

  Kind kind = Kind::kTable;
  std::string str;             // kString
  std::int64_t integer = 0;    // kInt
  double number = 0.0;         // kFloat (kInt mirrors its value here too)
  bool boolean = false;        // kBool
  std::vector<TomlValue> array;             // kArray
  std::map<std::string, TomlValue> table;   // kTable
  int line = 0;  // 1-based source line the value started on

  bool is_string() const { return kind == Kind::kString; }
  bool is_int() const { return kind == Kind::kInt; }
  bool is_float() const { return kind == Kind::kFloat; }
  bool is_number() const { return is_int() || is_float(); }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_table() const { return kind == Kind::kTable; }

  /// Human-readable kind name for error messages ("string", "integer", ...).
  const char* kind_name() const;

  /// Numeric value of an int or float node (throws ParseError otherwise).
  double as_number() const;
};

/// Parses a whole document into the root table. Throws ParseError with a
/// 1-based line number on any syntax error.
TomlValue parse_toml(std::string_view text);

}  // namespace greencc::dsl
