#pragma once

// Scenario-pack operations: enumerate a directory of .toml scenarios,
// validate every file (parse + semantic checks + compile of every sweep
// cell), and draw a deterministic sample — the subset the `scenario_pack`
// ctest label executes so CI touches the pack without running all of it.

#include <cstdint>
#include <string>
#include <vector>

namespace greencc::dsl {

/// All regular files ending in ".toml" under `dir`, recursively,
/// lexicographically sorted by path — the scan order is part of the
/// deterministic-sample contract.
std::vector<std::string> list_scenarios(const std::string& dir);

struct ValidationIssue {
  std::string file;
  std::string error;  ///< the DslError text ("file:line: message")
};

struct ValidationSummary {
  std::size_t files = 0;
  std::size_t cells = 0;  ///< expanded sweep cells across valid files
  std::size_t runs = 0;   ///< cells x repeats
  std::vector<ValidationIssue> issues;  ///< empty = the whole pack is valid
};

/// Deep-validate every file: parse, semantic checks, sweep expansion, and
/// compilation of every cell. Never throws for per-file problems — each
/// becomes a ValidationIssue.
ValidationSummary validate_pack(const std::vector<std::string>& files);

/// A deterministic pseudo-random subset of `count` files: files are ranked
/// by fnv1a64(path + ":" + seed) and the lowest ranks win, so the choice
/// depends only on (paths, seed) — never on scan order quirks, wall time,
/// or process state. Returns the winners in their original sorted order.
std::vector<std::string> sample_pack(const std::vector<std::string>& files,
                                     std::size_t count, std::uint64_t seed);

}  // namespace greencc::dsl
