#include "scenario_dsl/serialize.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace greencc::dsl {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_time(sim::SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "\"%" PRId64 "ns\"", t.ns());
  return buf;
}

std::string fmt_rate(units::BitRate r) {
  return quoted(fmt_double(r.bps()) + "bps");
}

std::string fmt_size(units::Bytes b) { return std::to_string(b.count()); }

std::string fmt_scalar(const TomlValue& v) {
  switch (v.kind) {
    case TomlValue::Kind::kString: return quoted(v.str);
    case TomlValue::Kind::kInt: return std::to_string(v.integer);
    case TomlValue::Kind::kFloat: return fmt_double(v.number);
    case TomlValue::Kind::kBool: return v.boolean ? "true" : "false";
    case TomlValue::Kind::kArray:
    case TomlValue::Kind::kTable: break;
  }
  return "\"\"";
}

void emit_faults(std::ostringstream& out, const fault::FaultPlan& plan) {
  out << "\n[faults]\n";
  out << "install = " << (plan.install ? "true" : "false") << "\n";
  const fault::ImpairmentConfig& imp = plan.impair;
  out << "loss = " << fmt_double(imp.loss_rate) << "\n";
  out << "ge_p_bad = " << fmt_double(imp.ge_p_bad) << "\n";
  out << "ge_p_good = " << fmt_double(imp.ge_p_good) << "\n";
  out << "ge_loss_bad = " << fmt_double(imp.ge_loss_bad) << "\n";
  out << "corrupt = " << fmt_double(imp.corrupt_rate) << "\n";
  out << "reorder = " << fmt_double(imp.reorder_rate) << "\n";
  out << "reorder_delay = " << fmt_time(imp.reorder_delay) << "\n";
  out << "duplicate = " << fmt_double(imp.duplicate_rate) << "\n";
  out << "jitter = " << fmt_time(imp.jitter_max) << "\n";
  out << "seed = " << imp.seed << "\n";
  out << "events = [";
  bool first = true;
  for (const fault::FaultEvent& ev : plan.schedule.events()) {
    if (!first) out << ", ";
    first = false;
    std::string what;
    switch (ev.kind) {
      case fault::FaultEvent::Kind::kLinkDown: what = "down"; break;
      case fault::FaultEvent::Kind::kLinkUp: what = "up"; break;
      case fault::FaultEvent::Kind::kRate:
        what = "rate=" + fmt_double(ev.rate.bps()) + "bps";
        break;
      case fault::FaultEvent::Kind::kDelay:
        what = "delay=" + std::to_string(ev.delay.ns()) + "ns";
        break;
    }
    out << quoted(what + "@" + std::to_string(ev.at.ns()) + "ns");
  }
  out << "]\n";
}

const char* aqm_mode_name(net::AqmMode mode) {
  switch (mode) {
    case net::AqmMode::kNone: return "none";
    case net::AqmMode::kStepEcn: return "step";
    case net::AqmMode::kRed: return "red";
    case net::AqmMode::kCodel: return "codel";
  }
  return "none";
}

}  // namespace

std::string serialize_scenario(const ScenarioDoc& doc) {
  std::ostringstream out;

  out << "[scenario]\n";
  out << "name = " << quoted(doc.name) << "\n";
  if (!doc.description.empty()) {
    out << "description = " << quoted(doc.description) << "\n";
  }
  out << "seed = " << doc.seed << "\n";
  out << "repeats = " << doc.repeats << "\n";
  out << "deadline = " << fmt_time(doc.deadline) << "\n";
  out << "work_jitter = " << fmt_double(doc.work_jitter) << "\n";
  out << "meter_receiver = " << (doc.meter_receiver ? "true" : "false")
      << "\n";
  out << "stress_cores = " << doc.stress_cores << "\n";
  out << "audit_interval = " << fmt_time(doc.audit_interval) << "\n";

  const TopologyDoc& topo = doc.topology;
  out << "\n[topology]\n";
  out << "kind = " << quoted(to_string(topo.kind)) << "\n";
  out << "bottleneck = " << fmt_rate(topo.bottleneck) << "\n";
  out << "link_delay = " << fmt_time(topo.link_delay) << "\n";
  out << "queue = " << fmt_size(topo.queue) << "\n";
  out << "ecn_threshold = " << fmt_size(topo.ecn_threshold) << "\n";
  out << "nic_ports = " << topo.nic_ports << "\n";
  out << "drr = " << (topo.drr ? "true" : "false") << "\n";
  out << "fan_in = " << topo.fan_in << "\n";
  out << "aggregate = " << fmt_size(topo.aggregate) << "\n";
  out << "hops = " << topo.hops << "\n";
  out << "cross_bytes = " << fmt_size(topo.cross_bytes) << "\n";
  out << "stagger = " << fmt_time(topo.stagger) << "\n";
  out << "racks = " << topo.racks << "\n";
  out << "hosts_per_rack = " << topo.hosts_per_rack << "\n";

  const tcp::TcpConfig& tcp = doc.tcp;
  out << "\n[tcp]\n";
  out << "mtu = " << fmt_size(tcp.mtu_bytes) << "\n";
  out << "header = " << fmt_size(tcp.header_bytes) << "\n";
  out << "ack = " << fmt_size(tcp.ack_bytes) << "\n";
  out << "min_rto = " << fmt_time(tcp.min_rto) << "\n";
  out << "max_rto = " << fmt_time(tcp.max_rto) << "\n";
  out << "dupack_threshold = " << tcp.dupack_threshold << "\n";
  out << "delack_segments = " << tcp.delack_segments << "\n";
  out << "delack_timeout = " << fmt_time(tcp.delack_timeout) << "\n";
  out << "initial_cwnd = " << tcp.initial_cwnd << "\n";

  const net::AqmConfig& aqm = doc.aqm;
  out << "\n[aqm]\n";
  out << "mode = " << quoted(aqm_mode_name(aqm.mode)) << "\n";
  out << "step_threshold = " << fmt_size(aqm.step_threshold_bytes) << "\n";
  out << "red_min = " << fmt_size(aqm.red_min_bytes) << "\n";
  out << "red_max = " << fmt_size(aqm.red_max_bytes) << "\n";
  out << "red_max_probability = " << fmt_double(aqm.red_max_probability)
      << "\n";
  out << "red_weight = " << fmt_double(aqm.red_weight) << "\n";
  out << "codel_target = " << fmt_time(aqm.codel_target) << "\n";
  out << "codel_interval = " << fmt_time(aqm.codel_interval) << "\n";

  emit_faults(out, doc.faults);

  const energy::PowerCalibration& p = doc.energy.power;
  const energy::WorkCalibration& w = doc.energy.work;
  out << "\n[energy]\n";
  out << "idle = " << fmt_double(p.idle_watts.watts()) << "\n";
  out << "net_amplitude = " << fmt_double(p.net_amplitude_watts.watts())
      << "\n";
  out << "net_util_scale = " << fmt_double(p.net_util_scale) << "\n";
  out << "omega = " << fmt_double(p.omega_watts_per_pps) << "\n";
  out << "stress_core = " << fmt_double(p.stress_core_watts.watts()) << "\n";
  out << "chi = " << fmt_double(p.chi_watts_per_gbps) << "\n";
  out << "total_cores = " << p.total_cores << "\n";
  out << "\n[energy.work]\n";
  out << "pkt_ns = " << fmt_double(w.pkt_ns) << "\n";
  out << "byte_ns = " << fmt_double(w.byte_ns) << "\n";
  out << "ack_ns = " << fmt_double(w.ack_ns) << "\n";
  out << "retx_ns = " << fmt_double(w.retx_ns) << "\n";
  out << "timeout_ns = " << fmt_double(w.timeout_ns) << "\n";
  out << "rx_pkt_ns = " << fmt_double(w.rx_pkt_ns) << "\n";
  out << "rx_byte_ns = " << fmt_double(w.rx_byte_ns) << "\n";
  out << "rx_drop_ns = " << fmt_double(w.rx_drop_ns) << "\n";
  out << "rx_backlog = " << w.rx_backlog_packets << "\n";

  if (topo.kind == TopologyKind::kWorkload) {
    const WorkloadDoc& wl = doc.workload;
    out << "\n[workload]\n";
    out << "cca = " << quoted(wl.cca) << "\n";
    out << "load = " << fmt_double(wl.load) << "\n";
    out << "sizes = " << quoted(wl.sizes) << "\n";
    out << "hosts = " << wl.hosts << "\n";
    out << "horizon = " << fmt_time(wl.horizon) << "\n";
  } else {
    for (const FlowDoc& flow : doc.flows) {
      out << "\n[[flow]]\n";
      out << "cca = " << quoted(flow.cca) << "\n";
      out << "bytes = " << fmt_size(flow.bytes) << "\n";
      out << "rate_limit = " << fmt_rate(flow.rate_limit) << "\n";
      out << "start = " << fmt_time(flow.start) << "\n";
      out << "weight = " << fmt_double(flow.weight) << "\n";
      out << "host = " << flow.host << "\n";
      out << "start_after = " << flow.start_after << "\n";
      out << "unlimit_after = " << flow.unlimit_after << "\n";
      out << "count = " << flow.count << "\n";
    }
  }

  for (const AxisDoc& axis : doc.axes) {
    out << "\n[[sweep.axis]]\n";
    out << "name = " << quoted(axis.name) << "\n";
    if (axis.paths.size() == 1) {
      out << "path = " << quoted(axis.paths[0]) << "\n";
    } else {
      out << "paths = [";
      for (std::size_t i = 0; i < axis.paths.size(); ++i) {
        if (i != 0) out << ", ";
        out << quoted(axis.paths[i]);
      }
      out << "]\n";
    }
    out << "values = [";
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i != 0) out << ", ";
      const std::vector<TomlValue>& tuple = axis.values[i];
      if (axis.paths.size() == 1) {
        out << fmt_scalar(tuple[0]);
      } else {
        out << "[";
        for (std::size_t j = 0; j < tuple.size(); ++j) {
          if (j != 0) out << ", ";
          out << fmt_scalar(tuple[j]);
        }
        out << "]";
      }
    }
    out << "]\n";
  }

  out << "\n[output]\n";
  out << "csv = " << quoted(doc.output.csv) << "\n";
  out << "scale_to = " << fmt_size(doc.output.scale_to) << "\n";
  for (const OutputColumn& col : doc.output.columns) {
    out << "\n[[output.column]]\n";
    out << "header = " << quoted(col.header) << "\n";
    if (!col.axis.empty()) {
      out << "axis = " << quoted(col.axis) << "\n";
    } else {
      out << "metric = " << quoted(col.metric) << "\n";
      out << "agg = " << quoted(col.agg) << "\n";
    }
    if (!col.format.empty()) {
      out << "format = " << quoted(col.format) << "\n";
    }
    out << "scale = " << (col.scale ? "true" : "false") << "\n";
  }

  return out.str();
}

}  // namespace greencc::dsl
