#pragma once

// Pack execution: runs one scenario document's expanded sweep under the
// robust::SweepSupervisor and emits the declared CSV.
//
// The contract inherited from the legacy grid benches, kept exactly:
//
//   tasks      every (cell, repeat) pair is one supervisor task, flattened
//              cell-major (task = cell * repeats + rep);
//   seeds      app::derive_seed(doc.seed, cell, rep) — coordinates, never
//              completion order, so any --jobs value is bit-identical;
//   journal    one "%.17g"-rendered metric vector per finished run,
//              append-fsync'd; --resume replays matching journals and
//              aggregates bit-identical values;
//   hash       the journal/config fingerprint is derived from the
//              app::config_canon canonical string of every compiled cell —
//              any field that can change a number changes the hash;
//   output     serial aggregation in cell order after the pool drains,
//              rendered through the [output] column spec (stats::CsvWriter).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "robust/supervisor.h"
#include "scenario_dsl/doc.h"

namespace greencc::dsl {

struct RunOptions {
  int jobs = 1;
  /// > 0 overrides scenario.repeats.
  int repeats = 0;
  bool have_seed = false;
  std::uint64_t seed = 0;  ///< with have_seed, overrides scenario.seed
  /// Non-empty overrides output.csv.
  std::string csv_path;
  /// Arm the invariant auditor (audit_interval = 10 ms) in every run.
  bool audit = false;
  /// --set path=value overrides, applied to the base document before
  /// expansion (same paths as sweep axes).
  std::vector<std::string> overrides;

  // Supervision (robust::SupervisorOptions passthrough).
  int max_attempts = 1;
  double cell_deadline_sec = 0.0;
  std::uint64_t event_budget = 0;
  std::string journal_path;
  bool resume = false;
  bool progress = true;
};

/// The base document with every RunOptions override applied — what both
/// plan_sweep and run_sweep actually expand. Throws ParseError/DslError
/// for malformed overrides.
ScenarioDoc effective_doc(const ScenarioDoc& doc, const RunOptions& options);

/// Static description of an expanded sweep (the --explain surface).
struct PackPlan {
  std::size_t cells = 0;
  std::size_t repeats = 0;
  std::size_t runs = 0;  ///< cells * repeats
  std::vector<std::pair<std::string, std::size_t>> axes;  ///< name, #values
  std::uint64_t config_hash = 0;
  std::string csv_path;
};

/// Expands and fingerprints without running anything. Compiles every cell
/// (so it also functions as a deep validation pass).
PackPlan plan_sweep(const ScenarioDoc& doc, const RunOptions& options);

struct SweepOutcome {
  robust::SweepReport report;
  std::string csv_path;  ///< file actually written
  std::size_t cells = 0;
  std::size_t repeats = 0;
};

/// Runs the full sweep and writes the CSV. Cell failures never throw (the
/// report discloses them); throws only for setup errors (bad overrides,
/// uncompilable cells, unwritable CSV/journal).
SweepOutcome run_sweep(const ScenarioDoc& doc, const RunOptions& options);

}  // namespace greencc::dsl
