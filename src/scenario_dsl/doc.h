#pragma once

// Typed scenario document: the schema layer of the scenario DSL.
//
// A ScenarioDoc is the validated, fully-defaulted in-memory form of one
// .toml scenario file. Parsing is strict — every key must be known, every
// value must have the right type and unit suffix, and violations carry the
// exact source line ("file.toml:12: unknown key 'mtuu' in [tcp]"). The
// document is a plain value: sweep expansion copies it per cell and
// mutates fields through apply_binding() (sweep.h), then compile.cc lowers
// it onto app::ScenarioBuilder / app::WorkloadBuilder.
//
// Grammar reference: DESIGN.md §13.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "energy/calibration.h"
#include "fault/plan.h"
#include "net/queue.h"
#include "scenario_dsl/toml.h"
#include "sim/time.h"
#include "tcp/tcp_config.h"
#include "units/units.h"

namespace greencc::dsl {

/// A schema/semantic error bound to a file and line. what() renders as
/// "<file>:<line>: <message>" — the format the golden-error tests pin.
class DslError : public std::runtime_error {
 public:
  DslError(const std::string& file, int line, const std::string& message)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " +
                           message),
        file_(file),
        line_(line) {}
  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string file_;
  int line_;
};

enum class TopologyKind {
  kDumbbell,    ///< N senders, one bottleneck, one receiver (the default)
  kParkingLot,  ///< main flow plus staggered cross traffic on the shared hop
  kIncast,      ///< fan_in synchronized senders converging on one receiver
  kFatTreePod,  ///< racks x hosts_per_rack senders sharing the pod uplink
  kWorkload,    ///< open-loop Poisson arrivals (app::run_workload)
};
const char* to_string(TopologyKind kind);

struct TopologyDoc {
  TopologyKind kind = TopologyKind::kDumbbell;
  units::BitRate bottleneck = units::BitRate::gbps(10);
  sim::SimTime link_delay = sim::SimTime::microseconds(5);
  units::Bytes queue{1 << 20};
  units::Bytes ecn_threshold{100'000};
  int nic_ports = 2;
  bool drr = false;
  // incast
  int fan_in = 8;
  units::Bytes aggregate = units::Bytes::zero();  ///< zero: per-flow bytes
  // parking_lot
  int hops = 2;
  units::Bytes cross_bytes{500'000'000};
  sim::SimTime stagger = sim::SimTime::milliseconds(50);
  // fat_tree_pod
  int racks = 4;
  int hosts_per_rack = 4;
};

/// One [[flow]] entry. Defaults mirror app::FlowSpec exactly so an omitted
/// key compiles to the same config a hand-written FlowSpec{} would.
struct FlowDoc {
  std::string cca = "cubic";
  units::Bytes bytes{1'250'000'000};
  units::BitRate rate_limit = units::BitRate::zero();
  sim::SimTime start = sim::SimTime::zero();
  double weight = 1.0;
  int host = -1;
  int start_after = -1;
  int unlimit_after = -1;
  int count = 1;  ///< replicate this spec `count` times
};

struct WorkloadDoc {
  std::string cca = "cubic";
  double load = 0.5;
  std::string sizes = "websearch";  ///< websearch | datamining | fixed:<n>
  int hosts = 8;
  sim::SimTime horizon = sim::SimTime::seconds(2.0);
};

struct EnergyDoc {
  energy::PowerCalibration power;
  energy::WorkCalibration work;
};

/// One CSV output column: either an axis echo or an aggregated metric.
struct OutputColumn {
  std::string header;
  std::string axis;           ///< axis name (exactly one of axis/metric)
  std::string metric;         ///< metric name, see runner.h for the list
  std::string agg = "mean";   ///< mean | stddev (metrics only)
  std::string format;         ///< str | int | yesno | g<N> | f<N>
  bool scale = false;         ///< multiply by the scale_to factor
  int line = 0;
};

struct OutputDoc {
  std::string csv;                          ///< default: "<name>.csv"
  units::Bytes scale_to = units::Bytes::zero();  ///< zero: no scaling
  std::vector<OutputColumn> columns;        ///< defaulted when absent
};

/// One [[sweep.axis]] entry. `values` holds one tuple per step; tuple
/// arity always equals paths.size() (plain axes have arity 1). Values stay
/// as TomlValue scalars so both binding application and canonical
/// re-serialization see the author's exact literal.
struct AxisDoc {
  std::string name;
  std::vector<std::string> paths;
  std::vector<std::vector<TomlValue>> values;
  int line = 0;
};

struct ScenarioDoc {
  std::string name;
  std::string description;
  std::uint64_t seed = 1;
  int repeats = 1;
  sim::SimTime deadline = sim::SimTime::seconds(600.0);
  double work_jitter = 0.02;
  bool meter_receiver = false;
  int stress_cores = 0;
  sim::SimTime audit_interval = sim::SimTime::zero();

  TopologyDoc topology;
  tcp::TcpConfig tcp;
  net::AqmConfig aqm;
  fault::FaultPlan faults;
  EnergyDoc energy;
  std::vector<FlowDoc> flows;
  WorkloadDoc workload;
  OutputDoc output;
  std::vector<AxisDoc> axes;

  std::string source_file;  ///< for error messages; not semantic
};

/// Parses + validates a scenario document from text. Throws DslError.
ScenarioDoc parse_scenario_text(std::string_view text,
                                const std::string& filename);

/// Reads `path` and parses it. Throws DslError (file read errors use
/// line 0).
ScenarioDoc load_scenario_file(const std::string& path);

// ---------------------------------------------------------------------------
// Typed value conversion, shared by the schema layer and sweep bindings.
// All throw ParseError (line-accurate); parse_scenario_text converts those
// into DslError with the file name attached.

std::string value_as_string(const TomlValue& v, const std::string& key);
bool value_as_bool(const TomlValue& v, const std::string& key);
std::int64_t value_as_int(const TomlValue& v, const std::string& key);
double value_as_double(const TomlValue& v, const std::string& key);

/// Bytes: a bare integer is bytes; strings take a suffix out of
/// B, kB, MB, GB, TB (decimal) or KiB, MiB, GiB (binary): "2GB", "64kB".
units::Bytes value_as_size(const TomlValue& v, const std::string& key);

/// Rates require a suffix out of bps, kbps, Mbps, Gbps: "10Gbps". A bare
/// number is rejected (no silently-ambiguous units).
units::BitRate value_as_rate(const TomlValue& v, const std::string& key);

/// Times require a suffix out of ns, us, ms, s: "5us", "1.5s".
sim::SimTime value_as_time(const TomlValue& v, const std::string& key);

/// Throws ParseError(line) unless `name` is in the CCA registry. Scenario
/// files are validated data — a typo'd algorithm name is a schema error at
/// --validate time, not a quarantined cell at hour three of a pack run.
void require_known_cca(const std::string& name, int line);

/// True for metric names the runner aggregates (runner.cc owns the list).
bool is_known_metric(const std::string& name);

}  // namespace greencc::dsl
