#include "scenario_dsl/compile.h"

namespace greencc::dsl {

namespace {

app::FlowSpec to_spec(const FlowDoc& flow) {
  app::FlowSpec spec;
  spec.cca = flow.cca;
  spec.bytes = flow.bytes;
  spec.rate_limit = flow.rate_limit;
  spec.start_time = flow.start;
  spec.sender_host = flow.host;
  spec.start_after_flow = flow.start_after;
  spec.unlimit_after_flow = flow.unlimit_after;
  spec.weight = flow.weight;
  return spec;
}

/// [[flow]] entries with their "count" replication applied.
std::vector<app::FlowSpec> expand_counts(const ScenarioDoc& doc) {
  std::vector<app::FlowSpec> specs;
  for (const FlowDoc& flow : doc.flows) {
    if (flow.count < 1) {
      throw ParseError(0, "flow.count must be >= 1, got " +
                              std::to_string(flow.count));
    }
    for (int i = 0; i < flow.count; ++i) specs.push_back(to_spec(flow));
  }
  return specs;
}

std::vector<app::FlowSpec> lower_flows(const ScenarioDoc& doc) {
  const TopologyDoc& topo = doc.topology;
  switch (topo.kind) {
    case TopologyKind::kDumbbell:
      return expand_counts(doc);

    case TopologyKind::kIncast: {
      if (topo.fan_in < 1) {
        throw ParseError(0, "topology.fan_in must be >= 1, got " +
                                std::to_string(topo.fan_in));
      }
      app::FlowSpec prototype = to_spec(doc.flows.front());
      if (topo.aggregate.count() > 0) {
        prototype.bytes = units::Bytes{topo.aggregate.count() / topo.fan_in};
        if (prototype.bytes.count() <= 0) {
          throw ParseError(0, "topology.aggregate splits to zero bytes per "
                              "incast sender");
        }
      }
      std::vector<app::FlowSpec> specs;
      for (int i = 0; i < topo.fan_in; ++i) {
        app::FlowSpec spec = prototype;
        spec.sender_host = i;  // one synchronized sender per host
        specs.push_back(spec);
      }
      return specs;
    }

    case TopologyKind::kParkingLot: {
      if (topo.hops < 1) {
        throw ParseError(0, "topology.hops must be >= 1, got " +
                                std::to_string(topo.hops));
      }
      std::vector<app::FlowSpec> specs;
      specs.push_back(to_spec(doc.flows.front()));
      const FlowDoc& cross_template =
          doc.flows.size() > 1 ? doc.flows[1] : doc.flows.front();
      for (int hop = 0; hop < topo.hops; ++hop) {
        app::FlowSpec cross = to_spec(cross_template);
        cross.bytes = topo.cross_bytes;
        cross.start_time = cross.start_time + topo.stagger * (hop + 1);
        cross.sender_host = 1 + hop;
        specs.push_back(cross);
      }
      return specs;
    }

    case TopologyKind::kFatTreePod: {
      const int hosts = topo.racks * topo.hosts_per_rack;
      if (hosts < 1) {
        throw ParseError(0, "fat_tree_pod needs racks * hosts_per_rack >= 1");
      }
      std::vector<app::FlowSpec> specs = expand_counts(doc);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].sender_host < 0) {
          // Round-robin rack assignment: flow i lands on rack i%racks,
          // host i/racks within it — spreads load across racks first.
          const int rack = static_cast<int>(i) % topo.racks;
          const int slot =
              (static_cast<int>(i) / topo.racks) % topo.hosts_per_rack;
          specs[i].sender_host = rack * topo.hosts_per_rack + slot;
        } else if (specs[i].sender_host >= hosts) {
          throw ParseError(0, "flow.host " +
                                  std::to_string(specs[i].sender_host) +
                                  " outside the fat_tree_pod's " +
                                  std::to_string(hosts) + " hosts");
        }
      }
      return specs;
    }

    case TopologyKind::kWorkload:
      return {};
  }
  return {};
}

}  // namespace

CompiledCell compile_scenario(const ScenarioDoc& doc) {
  CompiledCell cell;
  const TopologyDoc& topo = doc.topology;

  if (topo.kind == TopologyKind::kWorkload) {
    cell.is_workload = true;
    cell.open_loop.cca(doc.workload.cca)
        .mtu(doc.tcp.mtu_bytes)
        .bottleneck(topo.bottleneck)
        .load(doc.workload.load)
        .sender_hosts(doc.workload.hosts)
        .horizon(doc.workload.horizon)
        .seed(doc.seed)
        .sizes(doc.workload.sizes);
    return cell;
  }

  app::ScenarioBuilder& b = cell.scenario;
  b.config().tcp = doc.tcp;
  b.bottleneck(topo.bottleneck)
      .link_delay(topo.link_delay)
      .switch_queue(topo.queue)
      .ecn_threshold(topo.ecn_threshold)
      .aqm(doc.aqm)
      .nic_ports(topo.nic_ports)
      .drr_bottleneck(topo.drr)
      .stress_cores(doc.stress_cores)
      .meter_receiver(doc.meter_receiver)
      .work_jitter(doc.work_jitter)
      .deadline(doc.deadline)
      .audit_interval(doc.audit_interval)
      .power(doc.energy.power)
      .work(doc.energy.work)
      .faults(doc.faults)
      .seed(doc.seed);

  for (app::FlowSpec& spec : lower_flows(doc)) {
    b.add_flow(std::move(spec));
  }
  if (b.flows().empty()) {
    throw ParseError(0, "scenario compiles to zero flows");
  }
  return cell;
}

}  // namespace greencc::dsl
