#include "scenario_dsl/sweep.h"

#include <cstdlib>

namespace greencc::dsl {

namespace {

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : path) {
    if (c == '.') {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

[[noreturn]] void unknown_path(const std::string& path, int line) {
  throw ParseError(line, "unknown sweep path '" + path + "'");
}

void set_flow_field(FlowDoc& flow, const std::string& field,
                    const TomlValue& v, const std::string& path) {
  if (field == "cca") {
    flow.cca = value_as_string(v, path);
    require_known_cca(flow.cca, v.line);
  } else if (field == "bytes") flow.bytes = value_as_size(v, path);
  else if (field == "rate_limit") flow.rate_limit = value_as_rate(v, path);
  else if (field == "start") flow.start = value_as_time(v, path);
  else if (field == "weight") flow.weight = value_as_double(v, path);
  else if (field == "host") {
    flow.host = static_cast<int>(value_as_int(v, path));
  } else if (field == "start_after") {
    flow.start_after = static_cast<int>(value_as_int(v, path));
  } else if (field == "unlimit_after") {
    flow.unlimit_after = static_cast<int>(value_as_int(v, path));
  } else if (field == "count") {
    flow.count = static_cast<int>(value_as_int(v, path));
  } else {
    unknown_path(path, v.line);
  }
}

void set_scenario_field(ScenarioDoc& doc, const std::string& field,
                        const TomlValue& v, const std::string& path) {
  if (field == "stress_cores") {
    doc.stress_cores = static_cast<int>(value_as_int(v, path));
  } else if (field == "work_jitter") {
    doc.work_jitter = value_as_double(v, path);
  } else if (field == "meter_receiver") {
    doc.meter_receiver = value_as_bool(v, path);
  } else if (field == "deadline") {
    doc.deadline = value_as_time(v, path);
  } else if (field == "audit_interval") {
    doc.audit_interval = value_as_time(v, path);
  } else {
    unknown_path(path, v.line);
  }
}

void set_topology_field(ScenarioDoc& doc, const std::string& field,
                        const TomlValue& v, const std::string& path) {
  TopologyDoc& topo = doc.topology;
  if (field == "bottleneck") topo.bottleneck = value_as_rate(v, path);
  else if (field == "link_delay") topo.link_delay = value_as_time(v, path);
  else if (field == "queue") topo.queue = value_as_size(v, path);
  else if (field == "ecn_threshold") {
    topo.ecn_threshold = value_as_size(v, path);
  } else if (field == "nic_ports") {
    topo.nic_ports = static_cast<int>(value_as_int(v, path));
  } else if (field == "drr") {
    topo.drr = value_as_bool(v, path);
  } else if (field == "fan_in") {
    topo.fan_in = static_cast<int>(value_as_int(v, path));
  } else if (field == "aggregate") {
    topo.aggregate = value_as_size(v, path);
  } else if (field == "hops") {
    topo.hops = static_cast<int>(value_as_int(v, path));
  } else if (field == "cross_bytes") {
    topo.cross_bytes = value_as_size(v, path);
  } else if (field == "stagger") {
    topo.stagger = value_as_time(v, path);
  } else if (field == "racks") {
    topo.racks = static_cast<int>(value_as_int(v, path));
  } else if (field == "hosts_per_rack") {
    topo.hosts_per_rack = static_cast<int>(value_as_int(v, path));
  } else {
    unknown_path(path, v.line);
  }
}

void set_tcp_field(ScenarioDoc& doc, const std::string& field,
                   const TomlValue& v, const std::string& path) {
  tcp::TcpConfig& cfg = doc.tcp;
  if (field == "mtu") cfg.mtu_bytes = value_as_size(v, path);
  else if (field == "header") cfg.header_bytes = value_as_size(v, path);
  else if (field == "ack") cfg.ack_bytes = value_as_size(v, path);
  else if (field == "min_rto") cfg.min_rto = value_as_time(v, path);
  else if (field == "max_rto") cfg.max_rto = value_as_time(v, path);
  else if (field == "dupack_threshold") {
    cfg.dupack_threshold = static_cast<int>(value_as_int(v, path));
  } else if (field == "delack_segments") {
    cfg.delack_segments = static_cast<int>(value_as_int(v, path));
  } else if (field == "delack_timeout") {
    cfg.delack_timeout = value_as_time(v, path);
  } else if (field == "initial_cwnd") {
    cfg.initial_cwnd = value_as_int(v, path);
  } else {
    unknown_path(path, v.line);
  }
}

void set_aqm_field(ScenarioDoc& doc, const std::string& field,
                   const TomlValue& v, const std::string& path) {
  net::AqmConfig& aqm = doc.aqm;
  if (field == "mode") {
    const std::string mode = value_as_string(v, path);
    if (mode == "none") aqm.mode = net::AqmMode::kNone;
    else if (mode == "step") aqm.mode = net::AqmMode::kStepEcn;
    else if (mode == "red") aqm.mode = net::AqmMode::kRed;
    else if (mode == "codel") aqm.mode = net::AqmMode::kCodel;
    else {
      throw ParseError(v.line, path + ": must be one of none, step, red, "
                               "codel; got '" + mode + "'");
    }
  } else if (field == "step_threshold") {
    aqm.step_threshold_bytes = value_as_size(v, path);
  } else if (field == "red_min") {
    aqm.red_min_bytes = value_as_size(v, path);
  } else if (field == "red_max") {
    aqm.red_max_bytes = value_as_size(v, path);
  } else if (field == "red_max_probability") {
    aqm.red_max_probability = value_as_double(v, path);
  } else if (field == "red_weight") {
    aqm.red_weight = value_as_double(v, path);
  } else if (field == "codel_target") {
    aqm.codel_target = value_as_time(v, path);
  } else if (field == "codel_interval") {
    aqm.codel_interval = value_as_time(v, path);
  } else {
    unknown_path(path, v.line);
  }
}

void set_faults_field(ScenarioDoc& doc, const std::string& field,
                      const TomlValue& v, const std::string& path) {
  fault::FaultPlan& plan = doc.faults;
  if (field == "install") plan.install = value_as_bool(v, path);
  else if (field == "loss") plan.impair.loss_rate = value_as_double(v, path);
  else if (field == "ge_p_bad") {
    plan.impair.ge_p_bad = value_as_double(v, path);
  } else if (field == "ge_p_good") {
    plan.impair.ge_p_good = value_as_double(v, path);
  } else if (field == "ge_loss_bad") {
    plan.impair.ge_loss_bad = value_as_double(v, path);
  } else if (field == "corrupt") {
    plan.impair.corrupt_rate = value_as_double(v, path);
  } else if (field == "reorder") {
    plan.impair.reorder_rate = value_as_double(v, path);
  } else if (field == "reorder_delay") {
    plan.impair.reorder_delay = value_as_time(v, path);
  } else if (field == "duplicate") {
    plan.impair.duplicate_rate = value_as_double(v, path);
  } else if (field == "jitter") {
    plan.impair.jitter_max = value_as_time(v, path);
  } else if (field == "seed") {
    plan.impair.seed =
        static_cast<std::uint64_t>(value_as_int(v, path));
  } else {
    unknown_path(path, v.line);
  }
}

void set_energy_field(ScenarioDoc& doc, const std::string& field,
                      const TomlValue& v, const std::string& path) {
  energy::PowerCalibration& p = doc.energy.power;
  if (field == "idle") {
    p.idle_watts = units::Power::watts(value_as_double(v, path));
  } else if (field == "net_amplitude") {
    p.net_amplitude_watts =
        units::Power::watts(value_as_double(v, path));
  } else if (field == "net_util_scale") {
    p.net_util_scale = value_as_double(v, path);
  } else if (field == "omega") {
    p.omega_watts_per_pps = value_as_double(v, path);
  } else if (field == "stress_core") {
    p.stress_core_watts = units::Power::watts(value_as_double(v, path));
  } else if (field == "chi") {
    p.chi_watts_per_gbps = value_as_double(v, path);
  } else if (field == "total_cores") {
    p.total_cores = static_cast<int>(value_as_int(v, path));
  } else {
    unknown_path(path, v.line);
  }
}

void set_energy_work_field(ScenarioDoc& doc, const std::string& field,
                           const TomlValue& v, const std::string& path) {
  energy::WorkCalibration& w = doc.energy.work;
  if (field == "pkt_ns") w.pkt_ns = value_as_double(v, path);
  else if (field == "byte_ns") w.byte_ns = value_as_double(v, path);
  else if (field == "ack_ns") w.ack_ns = value_as_double(v, path);
  else if (field == "retx_ns") w.retx_ns = value_as_double(v, path);
  else if (field == "timeout_ns") w.timeout_ns = value_as_double(v, path);
  else if (field == "rx_pkt_ns") w.rx_pkt_ns = value_as_double(v, path);
  else if (field == "rx_byte_ns") w.rx_byte_ns = value_as_double(v, path);
  else if (field == "rx_drop_ns") w.rx_drop_ns = value_as_double(v, path);
  else if (field == "rx_backlog") {
    w.rx_backlog_packets = static_cast<int>(value_as_int(v, path));
  } else {
    unknown_path(path, v.line);
  }
}

void set_workload_field(ScenarioDoc& doc, const std::string& field,
                        const TomlValue& v, const std::string& path) {
  WorkloadDoc& wl = doc.workload;
  if (field == "cca") {
    wl.cca = value_as_string(v, path);
    require_known_cca(wl.cca, v.line);
  } else if (field == "load") wl.load = value_as_double(v, path);
  else if (field == "sizes") wl.sizes = value_as_string(v, path);
  else if (field == "hosts") {
    wl.hosts = static_cast<int>(value_as_int(v, path));
  } else if (field == "horizon") {
    wl.horizon = value_as_time(v, path);
  } else {
    unknown_path(path, v.line);
  }
}

}  // namespace

bool paths_overlap(const std::string& a, const std::string& b) {
  if (a == b) return true;
  const std::vector<std::string> pa = split_path(a);
  const std::vector<std::string> pb = split_path(b);
  if (pa.size() == 3 && pb.size() == 3 && pa[0] == "flow" &&
      pb[0] == "flow" && pa[2] == pb[2]) {
    return pa[1] == "*" || pb[1] == "*" || pa[1] == pb[1];
  }
  return false;
}

void apply_binding(ScenarioDoc& doc, const std::string& path,
                   const TomlValue& value) {
  const std::vector<std::string> parts = split_path(path);
  if (parts.size() == 3 && parts[0] == "flow") {
    if (parts[1] == "*") {
      if (doc.flows.empty()) {
        throw ParseError(value.line, "sweep path '" + path +
                                         "': scenario has no flows");
      }
      for (FlowDoc& flow : doc.flows) {
        set_flow_field(flow, parts[2], value, path);
      }
      return;
    }
    char* end = nullptr;
    const long index = std::strtol(parts[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || index < 0) {
      unknown_path(path, value.line);
    }
    if (static_cast<std::size_t>(index) >= doc.flows.size()) {
      throw ParseError(value.line,
                       "sweep path '" + path + "': flow index out of range "
                       "(scenario has " +
                           std::to_string(doc.flows.size()) + " flows)");
    }
    set_flow_field(doc.flows[static_cast<std::size_t>(index)], parts[2],
                   value, path);
    return;
  }
  if (parts.size() == 3 && parts[0] == "energy" && parts[1] == "work") {
    set_energy_work_field(doc, parts[2], value, path);
    return;
  }
  if (parts.size() == 2) {
    const std::string& section = parts[0];
    const std::string& field = parts[1];
    if (section == "scenario") return set_scenario_field(doc, field, value, path);
    if (section == "topology") return set_topology_field(doc, field, value, path);
    if (section == "tcp") return set_tcp_field(doc, field, value, path);
    if (section == "aqm") return set_aqm_field(doc, field, value, path);
    if (section == "faults") return set_faults_field(doc, field, value, path);
    if (section == "energy") return set_energy_field(doc, field, value, path);
    if (section == "workload") return set_workload_field(doc, field, value, path);
  }
  unknown_path(path, value.line);
}

void apply_override(ScenarioDoc& doc, const std::string& assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ParseError(0, "--set needs path=value, got '" + assignment + "'");
  }
  const std::string path = assignment.substr(0, eq);
  const std::string text = assignment.substr(eq + 1);

  TomlValue v;
  v.line = 0;
  char* end = nullptr;
  const long long as_int = std::strtoll(text.c_str(), &end, 10);
  if (text == "true" || text == "false") {
    v.kind = TomlValue::Kind::kBool;
    v.boolean = (text == "true");
  } else if (!text.empty() && end != nullptr && *end == '\0') {
    v.kind = TomlValue::Kind::kInt;
    v.integer = as_int;
    v.number = static_cast<double>(as_int);
  } else {
    const double as_double = std::strtod(text.c_str(), &end);
    if (!text.empty() && end != nullptr && *end == '\0') {
      v.kind = TomlValue::Kind::kFloat;
      v.number = as_double;
    } else {
      v.kind = TomlValue::Kind::kString;
      v.str = text;
    }
  }
  apply_binding(doc, path, v);
}

SweepGrid expand_sweep(const ScenarioDoc& doc) {
  SweepGrid grid;
  std::size_t total = 1;
  for (const AxisDoc& axis : doc.axes) total *= axis.values.size();
  grid.cells.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    SweepCell cell;
    cell.index = index;
    cell.choice.resize(doc.axes.size());
    // Row-major: first axis slowest.
    std::size_t rest = index;
    for (std::size_t a = doc.axes.size(); a-- > 0;) {
      const std::size_t size = doc.axes[a].values.size();
      cell.choice[a] = rest % size;
      rest /= size;
    }
    grid.cells.push_back(std::move(cell));
  }
  return grid;
}

ScenarioDoc doc_for_cell(const ScenarioDoc& base, const SweepCell& cell) {
  ScenarioDoc doc = base;
  for (std::size_t a = 0; a < base.axes.size(); ++a) {
    const AxisDoc& axis = base.axes[a];
    const std::vector<TomlValue>& tuple = axis.values[cell.choice[a]];
    for (std::size_t p = 0; p < axis.paths.size(); ++p) {
      apply_binding(doc, axis.paths[p], tuple[p]);
    }
  }
  return doc;
}

const TomlValue& axis_value(const ScenarioDoc& doc, const SweepCell& cell,
                            std::size_t axis_index) {
  return doc.axes[axis_index].values[cell.choice[axis_index]][0];
}

}  // namespace greencc::dsl
