#pragma once

// Sweep expansion: lowers a ScenarioDoc's [[sweep.axis]] declarations onto
// a flat row-major cell grid, and applies axis/--set bindings to document
// copies. The cell flattening contract matters: the FIRST declared axis
// varies slowest, exactly the legacy grid benches' loop nesting (mtu
// outer, cca inner) — so a ported scenario's cell indices, and therefore
// its derive_seed() streams, match the binary it replaces.

#include <cstddef>
#include <string>
#include <vector>

#include "scenario_dsl/doc.h"

namespace greencc::dsl {

/// True when two sweep paths would write the same field: exact match, or a
/// "flow.*" wildcard covering a "flow.N" path of the same field.
bool paths_overlap(const std::string& a, const std::string& b);

/// Applies one binding (sweep axis step or --set override) to the
/// document. Throws ParseError at the value's line for unknown paths and
/// type/unit mismatches. "flow.*.<field>" fans out to every flow.
void apply_binding(ScenarioDoc& doc, const std::string& path,
                   const TomlValue& value);

/// Parses a "path=value" override (the --set flag) into a binding and
/// applies it. The value text is typed by shape: true/false, integer,
/// float, else string ("9Gbps" arrives as a string and hits the same unit
/// parser a file value would).
void apply_override(ScenarioDoc& doc, const std::string& assignment);

/// One expanded cell: flat index plus the per-axis value choice.
struct SweepCell {
  std::size_t index = 0;
  std::vector<std::size_t> choice;  ///< one value index per axis
};

struct SweepGrid {
  std::vector<SweepCell> cells;  ///< row-major, first axis slowest
};

/// Expands the full cross product of doc.axes (one cell for an axis-less
/// document).
SweepGrid expand_sweep(const ScenarioDoc& doc);

/// The base document with one cell's bindings applied.
ScenarioDoc doc_for_cell(const ScenarioDoc& base, const SweepCell& cell);

/// The scalar an axis echo column shows for this cell (tuple entry 0 for
/// zip axes).
const TomlValue& axis_value(const ScenarioDoc& doc, const SweepCell& cell,
                            std::size_t axis_index);

}  // namespace greencc::dsl
