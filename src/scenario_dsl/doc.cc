#include "scenario_dsl/doc.h"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "cca/cca.h"
#include "scenario_dsl/sweep.h"

namespace greencc::dsl {

namespace {

bool is_identifier(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Tracks which keys of one table the schema consumed; finish() turns any
/// leftover into a line-accurate unknown-key error.
class TableReader {
 public:
  TableReader(const TomlValue& table, std::string section)
      : table_(table), section_(std::move(section)) {}

  const TomlValue* find(const std::string& key) {
    consumed_.insert(key);
    auto it = table_.table.find(key);
    return it == table_.table.end() ? nullptr : &it->second;
  }

  void finish() const {
    for (const auto& [key, value] : table_.table) {
      if (consumed_.count(key) == 0) {
        throw ParseError(value.line,
                         "unknown key '" + key + "' in " + section_);
      }
    }
  }

 private:
  const TomlValue& table_;
  std::string section_;
  std::set<std::string> consumed_;
};

/// Numeric prefix + suffix split for unit strings ("2.5Gbps" -> 2.5,
/// "Gbps"). Returns false when there is no leading number.
bool split_unit(const std::string& text, double* value,
                std::string* suffix) {
  const char* start = text.c_str();
  char* end = nullptr;
  *value = std::strtod(start, &end);
  if (end == start) return false;
  *suffix = std::string(end);
  return true;
}

[[noreturn]] void unit_error(const TomlValue& v, const std::string& key,
                             const std::string& expected) {
  std::string got;
  if (v.is_string()) {
    got = "'" + v.str + "'";
  } else {
    got = v.kind_name();
  }
  throw ParseError(v.line, key + ": expected " + expected + ", got " + got);
}

}  // namespace

void require_known_cca(const std::string& name, int line) {
  for (const std::string& known : cca::all_names()) {
    if (name == known) return;
  }
  for (const std::string& known : cca::datacenter_names()) {
    if (name == known) return;
  }
  throw ParseError(line, "unknown congestion control algorithm '" + name +
                             "'");
}

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDumbbell: return "dumbbell";
    case TopologyKind::kParkingLot: return "parking_lot";
    case TopologyKind::kIncast: return "incast";
    case TopologyKind::kFatTreePod: return "fat_tree_pod";
    case TopologyKind::kWorkload: return "workload";
  }
  return "dumbbell";
}

std::string value_as_string(const TomlValue& v, const std::string& key) {
  if (!v.is_string()) {
    throw ParseError(v.line, key + ": expected a string, got " +
                                 std::string(v.kind_name()));
  }
  return v.str;
}

bool value_as_bool(const TomlValue& v, const std::string& key) {
  if (!v.is_bool()) {
    throw ParseError(v.line, key + ": expected true or false, got " +
                                 std::string(v.kind_name()));
  }
  return v.boolean;
}

std::int64_t value_as_int(const TomlValue& v, const std::string& key) {
  if (!v.is_int()) {
    throw ParseError(v.line, key + ": expected an integer, got " +
                                 std::string(v.kind_name()));
  }
  return v.integer;
}

double value_as_double(const TomlValue& v, const std::string& key) {
  if (!v.is_number()) {
    throw ParseError(v.line, key + ": expected a number, got " +
                                 std::string(v.kind_name()));
  }
  return v.as_number();
}

units::Bytes value_as_size(const TomlValue& v, const std::string& key) {
  if (v.is_int()) return units::Bytes{v.integer};
  if (v.is_string()) {
    double value = 0.0;
    std::string suffix;
    if (split_unit(v.str, &value, &suffix)) {
      double mult = -1.0;
      if (suffix == "B") mult = 1.0;
      else if (suffix == "kB" || suffix == "KB") mult = 1e3;
      else if (suffix == "MB") mult = 1e6;
      else if (suffix == "GB") mult = 1e9;
      else if (suffix == "TB") mult = 1e12;
      else if (suffix == "KiB") mult = 1024.0;
      else if (suffix == "MiB") mult = 1024.0 * 1024.0;
      else if (suffix == "GiB") mult = 1024.0 * 1024.0 * 1024.0;
      if (mult > 0.0) {
        return units::Bytes{std::llround(value * mult)};
      }
    }
  }
  unit_error(v, key,
             "a size like \"2GB\" (suffix B/kB/MB/GB/TB/KiB/MiB/GiB) or an "
             "integer byte count");
}

units::BitRate value_as_rate(const TomlValue& v, const std::string& key) {
  if (v.is_string()) {
    double value = 0.0;
    std::string suffix;
    if (split_unit(v.str, &value, &suffix)) {
      // Each suffix maps onto the same units:: factory hand-written
      // configs use, so "10Gbps" is bit-for-bit units::BitRate::gbps(10).
      if (suffix == "bps") return units::BitRate::bps(value);
      if (suffix == "kbps") return units::BitRate::kbps(value);
      if (suffix == "Mbps") return units::BitRate::mbps(value);
      if (suffix == "Gbps") return units::BitRate::gbps(value);
    }
  }
  unit_error(v, key, "a rate like \"10Gbps\" (suffix bps/kbps/Mbps/Gbps)");
}

sim::SimTime value_as_time(const TomlValue& v, const std::string& key) {
  if (v.is_string()) {
    double value = 0.0;
    std::string suffix;
    if (split_unit(v.str, &value, &suffix)) {
      double mult = -1.0;  // nanoseconds per unit
      if (suffix == "ns") mult = 1.0;
      else if (suffix == "us") mult = 1e3;
      else if (suffix == "ms") mult = 1e6;
      else if (suffix == "s") mult = 1e9;
      if (mult > 0.0) {
        return sim::SimTime::nanoseconds(std::llround(value * mult));
      }
    }
  }
  unit_error(v, key, "a time like \"5us\" (suffix ns/us/ms/s)");
}

namespace {

void parse_scenario_section(const TomlValue& t, ScenarioDoc& doc) {
  TableReader r(t, "[scenario]");
  if (const TomlValue* v = r.find("name")) {
    doc.name = value_as_string(*v, "scenario.name");
    if (!is_identifier(doc.name)) {
      throw ParseError(v->line,
                       "scenario.name must be lowercase letters, digits, "
                       "'_' or '-', got '" +
                           doc.name + "'");
    }
  }
  if (const TomlValue* v = r.find("description")) {
    doc.description = value_as_string(*v, "scenario.description");
  }
  if (const TomlValue* v = r.find("seed")) {
    const std::int64_t s = value_as_int(*v, "scenario.seed");
    if (s < 0) throw ParseError(v->line, "scenario.seed must be >= 0");
    doc.seed = static_cast<std::uint64_t>(s);
  }
  if (const TomlValue* v = r.find("repeats")) {
    doc.repeats = static_cast<int>(value_as_int(*v, "scenario.repeats"));
    if (doc.repeats < 1) {
      throw ParseError(v->line, "scenario.repeats must be >= 1");
    }
  }
  if (const TomlValue* v = r.find("deadline")) {
    doc.deadline = value_as_time(*v, "scenario.deadline");
    if (doc.deadline <= sim::SimTime::zero()) {
      throw ParseError(v->line, "scenario.deadline must be > 0");
    }
  }
  if (const TomlValue* v = r.find("work_jitter")) {
    doc.work_jitter = value_as_double(*v, "scenario.work_jitter");
  }
  if (const TomlValue* v = r.find("meter_receiver")) {
    doc.meter_receiver = value_as_bool(*v, "scenario.meter_receiver");
  }
  if (const TomlValue* v = r.find("stress_cores")) {
    doc.stress_cores =
        static_cast<int>(value_as_int(*v, "scenario.stress_cores"));
  }
  if (const TomlValue* v = r.find("audit_interval")) {
    doc.audit_interval = value_as_time(*v, "scenario.audit_interval");
  }
  r.finish();
}

void parse_topology_section(const TomlValue& t, ScenarioDoc& doc) {
  TableReader r(t, "[topology]");
  TopologyDoc& topo = doc.topology;
  if (const TomlValue* v = r.find("kind")) {
    const std::string kind = value_as_string(*v, "topology.kind");
    if (kind == "dumbbell") topo.kind = TopologyKind::kDumbbell;
    else if (kind == "parking_lot") topo.kind = TopologyKind::kParkingLot;
    else if (kind == "incast") topo.kind = TopologyKind::kIncast;
    else if (kind == "fat_tree_pod") topo.kind = TopologyKind::kFatTreePod;
    else if (kind == "workload") topo.kind = TopologyKind::kWorkload;
    else {
      throw ParseError(v->line,
                       "topology.kind must be one of dumbbell, parking_lot, "
                       "incast, fat_tree_pod, workload; got '" +
                           kind + "'");
    }
  }
  if (const TomlValue* v = r.find("bottleneck")) {
    topo.bottleneck = value_as_rate(*v, "topology.bottleneck");
  }
  if (const TomlValue* v = r.find("link_delay")) {
    topo.link_delay = value_as_time(*v, "topology.link_delay");
  }
  if (const TomlValue* v = r.find("queue")) {
    topo.queue = value_as_size(*v, "topology.queue");
  }
  if (const TomlValue* v = r.find("ecn_threshold")) {
    topo.ecn_threshold = value_as_size(*v, "topology.ecn_threshold");
  }
  if (const TomlValue* v = r.find("nic_ports")) {
    topo.nic_ports = static_cast<int>(value_as_int(*v, "topology.nic_ports"));
  }
  if (const TomlValue* v = r.find("drr")) {
    topo.drr = value_as_bool(*v, "topology.drr");
  }
  if (const TomlValue* v = r.find("fan_in")) {
    topo.fan_in = static_cast<int>(value_as_int(*v, "topology.fan_in"));
    if (topo.fan_in < 1) {
      throw ParseError(v->line, "topology.fan_in must be >= 1");
    }
  }
  if (const TomlValue* v = r.find("aggregate")) {
    topo.aggregate = value_as_size(*v, "topology.aggregate");
  }
  if (const TomlValue* v = r.find("hops")) {
    topo.hops = static_cast<int>(value_as_int(*v, "topology.hops"));
    if (topo.hops < 1) throw ParseError(v->line, "topology.hops must be >= 1");
  }
  if (const TomlValue* v = r.find("cross_bytes")) {
    topo.cross_bytes = value_as_size(*v, "topology.cross_bytes");
  }
  if (const TomlValue* v = r.find("stagger")) {
    topo.stagger = value_as_time(*v, "topology.stagger");
  }
  if (const TomlValue* v = r.find("racks")) {
    topo.racks = static_cast<int>(value_as_int(*v, "topology.racks"));
    if (topo.racks < 1) throw ParseError(v->line, "topology.racks must be >= 1");
  }
  if (const TomlValue* v = r.find("hosts_per_rack")) {
    topo.hosts_per_rack =
        static_cast<int>(value_as_int(*v, "topology.hosts_per_rack"));
    if (topo.hosts_per_rack < 1) {
      throw ParseError(v->line, "topology.hosts_per_rack must be >= 1");
    }
  }
  r.finish();
}

void parse_tcp_section(const TomlValue& t, ScenarioDoc& doc) {
  TableReader r(t, "[tcp]");
  tcp::TcpConfig& cfg = doc.tcp;
  if (const TomlValue* v = r.find("mtu")) {
    cfg.mtu_bytes = value_as_size(*v, "tcp.mtu");
  }
  if (const TomlValue* v = r.find("header")) {
    cfg.header_bytes = value_as_size(*v, "tcp.header");
  }
  if (const TomlValue* v = r.find("ack")) {
    cfg.ack_bytes = value_as_size(*v, "tcp.ack");
  }
  if (const TomlValue* v = r.find("min_rto")) {
    cfg.min_rto = value_as_time(*v, "tcp.min_rto");
  }
  if (const TomlValue* v = r.find("max_rto")) {
    cfg.max_rto = value_as_time(*v, "tcp.max_rto");
  }
  if (const TomlValue* v = r.find("dupack_threshold")) {
    cfg.dupack_threshold =
        static_cast<int>(value_as_int(*v, "tcp.dupack_threshold"));
  }
  if (const TomlValue* v = r.find("delack_segments")) {
    cfg.delack_segments =
        static_cast<int>(value_as_int(*v, "tcp.delack_segments"));
  }
  if (const TomlValue* v = r.find("delack_timeout")) {
    cfg.delack_timeout = value_as_time(*v, "tcp.delack_timeout");
  }
  if (const TomlValue* v = r.find("initial_cwnd")) {
    cfg.initial_cwnd = value_as_int(*v, "tcp.initial_cwnd");
  }
  r.finish();
}

void parse_aqm_section(const TomlValue& t, ScenarioDoc& doc) {
  TableReader r(t, "[aqm]");
  net::AqmConfig& aqm = doc.aqm;
  if (const TomlValue* v = r.find("mode")) {
    const std::string mode = value_as_string(*v, "aqm.mode");
    if (mode == "none") aqm.mode = net::AqmMode::kNone;
    else if (mode == "step") aqm.mode = net::AqmMode::kStepEcn;
    else if (mode == "red") aqm.mode = net::AqmMode::kRed;
    else if (mode == "codel") aqm.mode = net::AqmMode::kCodel;
    else {
      throw ParseError(v->line,
                       "aqm.mode must be one of none, step, red, codel; "
                       "got '" +
                           mode + "'");
    }
  }
  if (const TomlValue* v = r.find("step_threshold")) {
    aqm.step_threshold_bytes = value_as_size(*v, "aqm.step_threshold");
  }
  if (const TomlValue* v = r.find("red_min")) {
    aqm.red_min_bytes = value_as_size(*v, "aqm.red_min");
  }
  if (const TomlValue* v = r.find("red_max")) {
    aqm.red_max_bytes = value_as_size(*v, "aqm.red_max");
  }
  if (const TomlValue* v = r.find("red_max_probability")) {
    aqm.red_max_probability =
        value_as_double(*v, "aqm.red_max_probability");
  }
  if (const TomlValue* v = r.find("red_weight")) {
    aqm.red_weight = value_as_double(*v, "aqm.red_weight");
  }
  if (const TomlValue* v = r.find("codel_target")) {
    aqm.codel_target = value_as_time(*v, "aqm.codel_target");
  }
  if (const TomlValue* v = r.find("codel_interval")) {
    aqm.codel_interval = value_as_time(*v, "aqm.codel_interval");
  }
  r.finish();
}

fault::FaultEvent parse_fault_event(const TomlValue& v) {
  const std::string text = value_as_string(v, "faults.events");
  const std::size_t at_pos = text.rfind('@');
  if (at_pos == std::string::npos) {
    throw ParseError(v.line, "faults.events entry must be \"<what>@<time>\" "
                             "like \"down@500ms\", got '" +
                                 text + "'");
  }
  TomlValue when;
  when.kind = TomlValue::Kind::kString;
  when.str = text.substr(at_pos + 1);
  when.line = v.line;

  fault::FaultEvent event;
  event.at = value_as_time(when, "faults.events time");
  const std::string what = text.substr(0, at_pos);
  if (what == "down") {
    event.kind = fault::FaultEvent::Kind::kLinkDown;
  } else if (what == "up") {
    event.kind = fault::FaultEvent::Kind::kLinkUp;
  } else if (what.rfind("rate=", 0) == 0) {
    event.kind = fault::FaultEvent::Kind::kRate;
    TomlValue rate;
    rate.kind = TomlValue::Kind::kString;
    rate.str = what.substr(5);
    rate.line = v.line;
    event.rate = value_as_rate(rate, "faults.events rate");
  } else if (what.rfind("delay=", 0) == 0) {
    event.kind = fault::FaultEvent::Kind::kDelay;
    TomlValue delay;
    delay.kind = TomlValue::Kind::kString;
    delay.str = what.substr(6);
    delay.line = v.line;
    event.delay = value_as_time(delay, "faults.events delay");
  } else {
    throw ParseError(v.line,
                     "faults.events entry must start with down, up, "
                     "rate=<rate> or delay=<time>; got '" +
                         text + "'");
  }
  return event;
}

void parse_faults_section(const TomlValue& t, ScenarioDoc& doc) {
  TableReader r(t, "[faults]");
  fault::FaultPlan& plan = doc.faults;
  plan.install = true;  // writing a [faults] section means "use it"
  if (const TomlValue* v = r.find("install")) {
    plan.install = value_as_bool(*v, "faults.install");
  }
  if (const TomlValue* v = r.find("loss")) {
    plan.impair.loss_rate = value_as_double(*v, "faults.loss");
  }
  if (const TomlValue* v = r.find("ge_p_bad")) {
    plan.impair.ge_p_bad = value_as_double(*v, "faults.ge_p_bad");
  }
  if (const TomlValue* v = r.find("ge_p_good")) {
    plan.impair.ge_p_good = value_as_double(*v, "faults.ge_p_good");
  }
  if (const TomlValue* v = r.find("ge_loss_bad")) {
    plan.impair.ge_loss_bad = value_as_double(*v, "faults.ge_loss_bad");
  }
  if (const TomlValue* v = r.find("corrupt")) {
    plan.impair.corrupt_rate = value_as_double(*v, "faults.corrupt");
  }
  if (const TomlValue* v = r.find("reorder")) {
    plan.impair.reorder_rate = value_as_double(*v, "faults.reorder");
  }
  if (const TomlValue* v = r.find("reorder_delay")) {
    plan.impair.reorder_delay = value_as_time(*v, "faults.reorder_delay");
  }
  if (const TomlValue* v = r.find("duplicate")) {
    plan.impair.duplicate_rate = value_as_double(*v, "faults.duplicate");
  }
  if (const TomlValue* v = r.find("jitter")) {
    plan.impair.jitter_max = value_as_time(*v, "faults.jitter");
  }
  if (const TomlValue* v = r.find("seed")) {
    const std::int64_t s = value_as_int(*v, "faults.seed");
    if (s < 0) throw ParseError(v->line, "faults.seed must be >= 0");
    plan.impair.seed = static_cast<std::uint64_t>(s);
  }
  if (const TomlValue* v = r.find("events")) {
    if (!v->is_array()) {
      throw ParseError(v->line, "faults.events: expected an array of "
                                "\"<what>@<time>\" strings");
    }
    for (const TomlValue& entry : v->array) {
      plan.schedule.add(parse_fault_event(entry));
    }
  }
  r.finish();
}

void parse_energy_section(const TomlValue& t, ScenarioDoc& doc) {
  TableReader r(t, "[energy]");
  energy::PowerCalibration& p = doc.energy.power;
  if (const TomlValue* v = r.find("idle")) {
    p.idle_watts = units::Power::watts(value_as_double(*v, "energy.idle"));
  }
  if (const TomlValue* v = r.find("net_amplitude")) {
    p.net_amplitude_watts =
        units::Power::watts(value_as_double(*v, "energy.net_amplitude"));
  }
  if (const TomlValue* v = r.find("net_util_scale")) {
    p.net_util_scale = value_as_double(*v, "energy.net_util_scale");
  }
  if (const TomlValue* v = r.find("omega")) {
    p.omega_watts_per_pps = value_as_double(*v, "energy.omega");
  }
  if (const TomlValue* v = r.find("stress_core")) {
    p.stress_core_watts =
        units::Power::watts(value_as_double(*v, "energy.stress_core"));
  }
  if (const TomlValue* v = r.find("chi")) {
    p.chi_watts_per_gbps = value_as_double(*v, "energy.chi");
  }
  if (const TomlValue* v = r.find("total_cores")) {
    p.total_cores = static_cast<int>(value_as_int(*v, "energy.total_cores"));
  }
  if (const TomlValue* work = r.find("work")) {
    if (!work->is_table()) {
      throw ParseError(work->line, "[energy.work] must be a table");
    }
    TableReader wr(*work, "[energy.work]");
    energy::WorkCalibration& w = doc.energy.work;
    if (const TomlValue* v = wr.find("pkt_ns")) {
      w.pkt_ns = value_as_double(*v, "energy.work.pkt_ns");
    }
    if (const TomlValue* v = wr.find("byte_ns")) {
      w.byte_ns = value_as_double(*v, "energy.work.byte_ns");
    }
    if (const TomlValue* v = wr.find("ack_ns")) {
      w.ack_ns = value_as_double(*v, "energy.work.ack_ns");
    }
    if (const TomlValue* v = wr.find("retx_ns")) {
      w.retx_ns = value_as_double(*v, "energy.work.retx_ns");
    }
    if (const TomlValue* v = wr.find("timeout_ns")) {
      w.timeout_ns = value_as_double(*v, "energy.work.timeout_ns");
    }
    if (const TomlValue* v = wr.find("rx_pkt_ns")) {
      w.rx_pkt_ns = value_as_double(*v, "energy.work.rx_pkt_ns");
    }
    if (const TomlValue* v = wr.find("rx_byte_ns")) {
      w.rx_byte_ns = value_as_double(*v, "energy.work.rx_byte_ns");
    }
    if (const TomlValue* v = wr.find("rx_drop_ns")) {
      w.rx_drop_ns = value_as_double(*v, "energy.work.rx_drop_ns");
    }
    if (const TomlValue* v = wr.find("rx_backlog")) {
      w.rx_backlog_packets =
          static_cast<int>(value_as_int(*v, "energy.work.rx_backlog"));
    }
    wr.finish();
  }
  r.finish();
}

FlowDoc parse_flow_entry(const TomlValue& t, int index) {
  const std::string section = "[[flow]] #" + std::to_string(index);
  TableReader r(t, section);
  FlowDoc flow;
  if (const TomlValue* v = r.find("cca")) {
    flow.cca = value_as_string(*v, "flow.cca");
    require_known_cca(flow.cca, v->line);
  }
  if (const TomlValue* v = r.find("bytes")) {
    flow.bytes = value_as_size(*v, "flow.bytes");
    if (flow.bytes.count() <= 0) {
      throw ParseError(v->line, "flow.bytes must be > 0");
    }
  }
  if (const TomlValue* v = r.find("rate_limit")) {
    flow.rate_limit = value_as_rate(*v, "flow.rate_limit");
  }
  if (const TomlValue* v = r.find("start")) {
    flow.start = value_as_time(*v, "flow.start");
  }
  if (const TomlValue* v = r.find("weight")) {
    flow.weight = value_as_double(*v, "flow.weight");
    if (flow.weight <= 0.0) {
      throw ParseError(v->line, "flow.weight must be > 0");
    }
  }
  if (const TomlValue* v = r.find("host")) {
    flow.host = static_cast<int>(value_as_int(*v, "flow.host"));
  }
  if (const TomlValue* v = r.find("start_after")) {
    flow.start_after = static_cast<int>(value_as_int(*v, "flow.start_after"));
  }
  if (const TomlValue* v = r.find("unlimit_after")) {
    flow.unlimit_after =
        static_cast<int>(value_as_int(*v, "flow.unlimit_after"));
  }
  if (const TomlValue* v = r.find("count")) {
    flow.count = static_cast<int>(value_as_int(*v, "flow.count"));
    if (flow.count < 1) throw ParseError(v->line, "flow.count must be >= 1");
  }
  r.finish();
  return flow;
}

void parse_workload_section(const TomlValue& t, ScenarioDoc& doc) {
  TableReader r(t, "[workload]");
  WorkloadDoc& wl = doc.workload;
  if (const TomlValue* v = r.find("cca")) {
    wl.cca = value_as_string(*v, "workload.cca");
    require_known_cca(wl.cca, v->line);
  }
  if (const TomlValue* v = r.find("load")) {
    wl.load = value_as_double(*v, "workload.load");
    if (wl.load <= 0.0) {
      throw ParseError(v->line, "workload.load must be > 0");
    }
  }
  if (const TomlValue* v = r.find("sizes")) {
    wl.sizes = value_as_string(*v, "workload.sizes");
    const bool known = wl.sizes == "websearch" || wl.sizes == "datamining" ||
                       wl.sizes.rfind("fixed:", 0) == 0;
    if (!known) {
      throw ParseError(v->line,
                       "workload.sizes must be websearch, datamining or "
                       "fixed:<bytes>; got '" +
                           wl.sizes + "'");
    }
  }
  if (const TomlValue* v = r.find("hosts")) {
    wl.hosts = static_cast<int>(value_as_int(*v, "workload.hosts"));
    if (wl.hosts < 1) throw ParseError(v->line, "workload.hosts must be >= 1");
  }
  if (const TomlValue* v = r.find("horizon")) {
    wl.horizon = value_as_time(*v, "workload.horizon");
    if (wl.horizon <= sim::SimTime::zero()) {
      throw ParseError(v->line, "workload.horizon must be > 0");
    }
  }
  r.finish();
}

/// A scalar axis value: string/int/float/bool only.
void require_scalar(const TomlValue& v, const std::string& where) {
  if (v.is_array() || v.is_table()) {
    throw ParseError(v.line, where + ": expected a scalar value, got " +
                                 std::string(v.kind_name()));
  }
}

AxisDoc parse_axis_entry(const TomlValue& t, int index) {
  const std::string section = "[[sweep.axis]] #" + std::to_string(index);
  TableReader r(t, section);
  AxisDoc axis;
  axis.line = t.line;

  if (const TomlValue* v = r.find("name")) {
    axis.name = value_as_string(*v, "sweep.axis.name");
  }
  if (axis.name.empty() || !is_identifier(axis.name)) {
    throw ParseError(t.line, section + " needs a name of lowercase "
                             "letters, digits, '_' or '-'");
  }

  const TomlValue* path = r.find("path");
  const TomlValue* paths = r.find("paths");
  if ((path != nullptr) == (paths != nullptr)) {
    throw ParseError(t.line, "sweep axis '" + axis.name +
                                 "' needs exactly one of path or paths");
  }
  if (path != nullptr) {
    axis.paths.push_back(value_as_string(*path, "sweep.axis.path"));
  } else {
    if (!paths->is_array() || paths->array.empty()) {
      throw ParseError(paths->line,
                       "sweep.axis.paths: expected a non-empty array of "
                       "path strings");
    }
    for (const TomlValue& p : paths->array) {
      axis.paths.push_back(value_as_string(p, "sweep.axis.paths"));
    }
  }

  const TomlValue* values = r.find("values");
  const TomlValue* from = r.find("from");
  const TomlValue* to = r.find("to");
  const TomlValue* step = r.find("step");
  const bool has_range = from != nullptr || to != nullptr || step != nullptr;
  if ((values != nullptr) == has_range) {
    throw ParseError(axis.line,
                     "sweep axis '" + axis.name +
                         "' needs either values or from/to/step");
  }

  if (has_range) {
    if (from == nullptr || to == nullptr || step == nullptr) {
      throw ParseError(axis.line, "sweep axis '" + axis.name +
                                      "' range needs from, to and step");
    }
    if (axis.paths.size() != 1) {
      throw ParseError(axis.line, "sweep axis '" + axis.name +
                                      "' ranges only work with one path");
    }
    const std::int64_t lo = value_as_int(*from, "sweep.axis.from");
    const std::int64_t hi = value_as_int(*to, "sweep.axis.to");
    const std::int64_t by = value_as_int(*step, "sweep.axis.step");
    if (by <= 0) {
      throw ParseError(step->line, "sweep.axis.step must be > 0");
    }
    if (hi < lo) {
      throw ParseError(to->line, "sweep.axis.to must be >= from");
    }
    for (std::int64_t x = lo; x <= hi; x += by) {
      TomlValue v;
      v.kind = TomlValue::Kind::kInt;
      v.integer = x;
      v.number = static_cast<double>(x);
      v.line = from->line;
      axis.values.push_back({v});
    }
  } else if (values->is_string()) {
    // Axis macro: the curated CCA lists, in registry order.
    const std::vector<std::string>* names = nullptr;
    if (values->str == "paper_ccas") names = &cca::all_names();
    else if (values->str == "datacenter_ccas") names = &cca::datacenter_names();
    if (names == nullptr) {
      throw ParseError(values->line,
                       "unknown axis macro '" + values->str +
                           "' (known: paper_ccas, datacenter_ccas)");
    }
    if (axis.paths.size() != 1) {
      throw ParseError(values->line, "sweep axis '" + axis.name +
                                         "' macros only work with one path");
    }
    for (const std::string& name : *names) {
      TomlValue v;
      v.kind = TomlValue::Kind::kString;
      v.str = name;
      v.line = values->line;
      axis.values.push_back({v});
    }
  } else if (values->is_array()) {
    if (values->array.empty()) {
      throw ParseError(values->line,
                       "sweep axis '" + axis.name + "' has no values");
    }
    for (const TomlValue& v : values->array) {
      if (axis.paths.size() == 1) {
        require_scalar(v, "sweep axis '" + axis.name + "' value");
        axis.values.push_back({v});
        continue;
      }
      // zip axis: every value is a tuple matching paths
      if (!v.is_array() || v.array.size() != axis.paths.size()) {
        throw ParseError(v.line,
                         "sweep axis '" + axis.name + "' zip value must be "
                         "an array of " +
                             std::to_string(axis.paths.size()) +
                             " entries (one per path)");
      }
      for (const TomlValue& entry : v.array) {
        require_scalar(entry, "sweep axis '" + axis.name + "' value");
      }
      axis.values.push_back(v.array);
    }
  } else {
    throw ParseError(values->line,
                     "sweep.axis.values: expected an array or a macro "
                     "string");
  }

  r.finish();
  return axis;
}

OutputColumn parse_column_entry(const TomlValue& t, int index) {
  const std::string section = "[[output.column]] #" + std::to_string(index);
  TableReader r(t, section);
  OutputColumn col;
  col.line = t.line;
  if (const TomlValue* v = r.find("header")) {
    col.header = value_as_string(*v, "output.column.header");
  }
  if (col.header.empty()) {
    throw ParseError(t.line, section + " needs a header");
  }
  const TomlValue* axis = r.find("axis");
  const TomlValue* metric = r.find("metric");
  if ((axis != nullptr) == (metric != nullptr)) {
    throw ParseError(t.line, "output column '" + col.header +
                                 "' needs exactly one of axis or metric");
  }
  if (axis != nullptr) col.axis = value_as_string(*axis, "output.column.axis");
  if (metric != nullptr) {
    col.metric = value_as_string(*metric, "output.column.metric");
  }
  if (const TomlValue* v = r.find("agg")) {
    col.agg = value_as_string(*v, "output.column.agg");
    if (col.agg != "mean" && col.agg != "stddev") {
      throw ParseError(v->line,
                       "output.column.agg must be mean or stddev, got '" +
                           col.agg + "'");
    }
  }
  if (const TomlValue* v = r.find("format")) {
    col.format = value_as_string(*v, "output.column.format");
    bool ok = col.format == "str" || col.format == "int" ||
              col.format == "yesno";
    if (!ok && col.format.size() >= 2 &&
        (col.format[0] == 'g' || col.format[0] == 'f')) {
      ok = col.format.find_first_not_of("0123456789", 1) ==
               std::string::npos &&
           col.format.size() <= 3;
    }
    if (!ok) {
      throw ParseError(v->line,
                       "output.column.format must be str, int, yesno, g<N> "
                       "or f<N>; got '" +
                           col.format + "'");
    }
  }
  if (const TomlValue* v = r.find("scale")) {
    col.scale = value_as_bool(*v, "output.column.scale");
  }
  r.finish();
  return col;
}

void parse_output_section(const TomlValue& t, ScenarioDoc& doc) {
  TableReader r(t, "[output]");
  OutputDoc& out = doc.output;
  if (const TomlValue* v = r.find("csv")) {
    out.csv = value_as_string(*v, "output.csv");
  }
  if (const TomlValue* v = r.find("scale_to")) {
    out.scale_to = value_as_size(*v, "output.scale_to");
  }
  if (const TomlValue* v = r.find("column")) {
    if (!v->is_array()) {
      throw ParseError(v->line, "[[output.column]] must be an array of "
                                "tables");
    }
    int index = 0;
    for (const TomlValue& entry : v->array) {
      out.columns.push_back(parse_column_entry(entry, index++));
    }
  }
  r.finish();
}

/// Fills in the default output spec: one echo column per axis plus the
/// standard aggregate metrics (legacy cca_grid's column set).
void default_output_columns(ScenarioDoc& doc) {
  auto metric_col = [](const char* header, const char* metric,
                       const char* agg, bool scale) {
    OutputColumn col;
    col.header = header;
    col.metric = metric;
    col.agg = agg;
    col.format = std::string(metric) == "completed" ? "yesno" : "g12";
    col.scale = scale;
    return col;
  };
  for (const AxisDoc& axis : doc.axes) {
    OutputColumn col;
    col.header = axis.name;
    col.axis = axis.name;
    doc.output.columns.push_back(col);
  }
  doc.output.columns.push_back(
      metric_col("energy_joules", "energy_joules", "mean", true));
  doc.output.columns.push_back(
      metric_col("energy_stddev", "energy_joules", "stddev", true));
  doc.output.columns.push_back(
      metric_col("power_watts", "power_watts", "mean", false));
  if (doc.topology.kind == TopologyKind::kWorkload) {
    doc.output.columns.push_back(
        metric_col("goodput_gbps", "goodput_gbps", "mean", false));
    doc.output.columns.push_back(
        metric_col("mean_slowdown", "mean_slowdown", "mean", false));
    doc.output.columns.push_back(
        metric_col("p99_slowdown", "p99_slowdown", "mean", false));
  } else {
    doc.output.columns.push_back(
        metric_col("fct_sec", "fct_sec", "mean", true));
    doc.output.columns.push_back(
        metric_col("retransmissions", "retransmissions", "mean", true));
  }
  doc.output.columns.push_back(
      metric_col("completed", "completed", "mean", false));
}

void validate_semantics(ScenarioDoc& doc) {
  if (doc.name.empty()) {
    throw ParseError(1, "[scenario] needs a name");
  }

  const bool is_workload = doc.topology.kind == TopologyKind::kWorkload;
  if (is_workload && !doc.flows.empty()) {
    throw ParseError(doc.axes.empty() ? 1 : doc.axes.front().line,
                     "topology.kind \"workload\" drives flows from "
                     "[workload]; remove the [[flow]] sections");
  }
  if (!is_workload && doc.flows.empty()) {
    doc.flows.push_back(FlowDoc{});  // one default cubic flow
  }
  if (doc.topology.kind == TopologyKind::kIncast && doc.flows.size() > 1) {
    throw ParseError(1, "topology.kind \"incast\" replicates a single "
                        "[[flow]] template fan_in times; give exactly one");
  }
  if (doc.topology.kind == TopologyKind::kParkingLot &&
      doc.flows.size() > 2) {
    throw ParseError(1, "topology.kind \"parking_lot\" takes at most two "
                        "[[flow]] entries (main flow and cross template)");
  }

  // Axis names must be unique; bound paths must not overlap.
  std::set<std::string> axis_names;
  std::vector<std::pair<std::string, std::string>> bound;  // path, axis
  for (const AxisDoc& axis : doc.axes) {
    if (!axis_names.insert(axis.name).second) {
      throw ParseError(axis.line, "duplicate sweep axis '" + axis.name + "'");
    }
    for (const std::string& path : axis.paths) {
      for (const auto& [other_path, other_axis] : bound) {
        if (paths_overlap(path, other_path)) {
          throw ParseError(axis.line, "sweep axis '" + axis.name +
                                          "' binds path '" + path +
                                          "', already bound by axis '" +
                                          other_axis + "'");
        }
      }
      bound.emplace_back(path, axis.name);
    }
  }

  // Type-check every axis value by applying each binding to a probe copy.
  ScenarioDoc probe = doc;
  for (const AxisDoc& axis : doc.axes) {
    for (const std::vector<TomlValue>& tuple : axis.values) {
      for (std::size_t p = 0; p < axis.paths.size(); ++p) {
        apply_binding(probe, axis.paths[p], tuple[p]);
      }
    }
  }

  // Output columns must reference declared axes / known metrics.
  for (const OutputColumn& col : doc.output.columns) {
    if (!col.axis.empty() && axis_names.count(col.axis) == 0) {
      throw ParseError(col.line, "output column '" + col.header +
                                     "' references unknown axis '" +
                                     col.axis + "'");
    }
    if (!col.metric.empty() && !is_known_metric(col.metric)) {
      throw ParseError(col.line, "output column '" + col.header +
                                     "' references unknown metric '" +
                                     col.metric + "'");
    }
  }

  if (doc.output.csv.empty()) doc.output.csv = doc.name + ".csv";
  if (doc.output.columns.empty()) default_output_columns(doc);
}

}  // namespace

ScenarioDoc parse_scenario_text(std::string_view text,
                                const std::string& filename) {
  try {
    const TomlValue root = parse_toml(text);
    ScenarioDoc doc;
    doc.source_file = filename;

    TableReader r(root, "the top level");
    if (const TomlValue* v = r.find("scenario")) {
      parse_scenario_section(*v, doc);
    }
    if (const TomlValue* v = r.find("topology")) {
      parse_topology_section(*v, doc);
    }
    if (const TomlValue* v = r.find("tcp")) parse_tcp_section(*v, doc);
    if (const TomlValue* v = r.find("aqm")) parse_aqm_section(*v, doc);
    if (const TomlValue* v = r.find("faults")) parse_faults_section(*v, doc);
    if (const TomlValue* v = r.find("energy")) parse_energy_section(*v, doc);
    if (const TomlValue* v = r.find("flow")) {
      if (!v->is_array()) {
        throw ParseError(v->line, "[[flow]] must be an array of tables");
      }
      int index = 0;
      for (const TomlValue& entry : v->array) {
        doc.flows.push_back(parse_flow_entry(entry, index++));
      }
    }
    if (const TomlValue* v = r.find("workload")) {
      parse_workload_section(*v, doc);
    }
    if (const TomlValue* v = r.find("sweep")) {
      if (!v->is_table()) {
        throw ParseError(v->line, "[sweep] must be a table");
      }
      TableReader sr(*v, "[sweep]");
      if (const TomlValue* axes = sr.find("axis")) {
        if (!axes->is_array()) {
          throw ParseError(axes->line,
                           "[[sweep.axis]] must be an array of tables");
        }
        int index = 0;
        for (const TomlValue& entry : axes->array) {
          doc.axes.push_back(parse_axis_entry(entry, index++));
        }
      }
      sr.finish();
    }
    if (const TomlValue* v = r.find("output")) parse_output_section(*v, doc);
    r.finish();

    validate_semantics(doc);
    return doc;
  } catch (const ParseError& e) {
    throw DslError(filename, e.line(), e.message());
  }
}

ScenarioDoc load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw DslError(path, 0, "cannot open file");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario_text(buffer.str(), path);
}

}  // namespace greencc::dsl
