#pragma once

// Lowers a (binding-applied) ScenarioDoc onto the app-layer builders. The
// topology kinds all compile to the existing single-bottleneck testbed
// graph (app::Scenario); what differs is how the flow list is generated:
//
//   dumbbell      [[flow]] entries verbatim ("count" replicates a spec)
//   incast        one template flow replicated fan_in times on distinct
//                 hosts, all starting together; "aggregate" splits a total
//                 transfer evenly across the fan-in
//   parking_lot   main flow plus `hops` cross flows (template: the second
//                 [[flow]] entry when present) staggered by `stagger`
//   fat_tree_pod  racks*hosts_per_rack hosts share the pod uplink (the
//                 bottleneck); expanded flows round-robin over the hosts
//   workload      app::run_workload open-loop Poisson arrivals
//
// Seeds are NOT set here — the runner derives one per (cell, repeat) with
// app::derive_seed, exactly like the legacy grid benches.

#include "app/scenario_builder.h"
#include "scenario_dsl/doc.h"

namespace greencc::dsl {

struct CompiledCell {
  bool is_workload = false;
  app::ScenarioBuilder scenario;
  app::WorkloadBuilder open_loop;
};

/// Compiles one document (after sweep bindings) to runnable builders.
/// Throws ParseError for semantic errors only expressible post-binding
/// (e.g. flow.count driven out of range by an axis).
CompiledCell compile_scenario(const ScenarioDoc& doc);

}  // namespace greencc::dsl
