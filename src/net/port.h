#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/queue.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "trace/counters.h"
#include "trace/trace.h"

namespace greencc::net {

/// Configuration of a queued transmission port (NIC port or switch egress).
struct PortConfig {
  units::BitRate rate = units::BitRate::gbps(10);      ///< line rate
  sim::SimTime propagation = sim::SimTime::microseconds(5);
  units::Bytes queue_capacity_bytes{1 << 20};          ///< 1 MiB buffer
  units::Bytes ecn_threshold_bytes;                    ///< 0 = no marking
  /// Full AQM configuration; used when `aqm.mode != kNone`, otherwise the
  /// legacy ecn_threshold_bytes shorthand applies.
  AqmConfig aqm;
  /// Fixed per-packet service overhead on top of serialization. Models a
  /// packet-processing stage (e.g. the receiver's softirq path) rather than
  /// a wire, making the service rate MTU-dependent.
  double per_packet_ns = 0.0;
  /// Queue capacity in packets (0 = bytes cap only). The kernel's netdev
  /// backlog is packet-counted, which matters when sweeping the MTU.
  std::size_t queue_capacity_packets = 0;
  /// Service time consumed by a *dropped* packet (a backlog drop happens
  /// after DMA and first touch, so it still costs the processing stage).
  double drop_service_ns = 0.0;
};

inline AqmConfig step_ecn_config(units::Bytes threshold_bytes) {
  AqmConfig aqm;
  if (threshold_bytes > units::Bytes::zero()) {
    aqm.mode = AqmMode::kStepEcn;
    aqm.step_threshold_bytes = threshold_bytes;
  }
  return aqm;
}

/// A queue feeding a serializing transmitter over a propagation-delay link —
/// the standard queue+server model of one output port.
///
/// Packets arrive through `handle()`; when the transmitter is idle the head
/// packet serializes for size/rate seconds, then arrives at the downstream
/// handler after the propagation delay. Everything is event-driven; an idle
/// port costs no events.
class QueuedPort : public PacketHandler {
 public:
  QueuedPort(sim::Simulator& sim, std::string name, const PortConfig& config,
             PacketHandler* next)
      : sim_(sim),
        name_(std::move(name)),
        config_(config),
        queue_(config.queue_capacity_bytes,
               config.aqm.mode != AqmMode::kNone
                   ? config.aqm
                   : step_ecn_config(config.ecn_threshold_bytes),
               config.queue_capacity_packets),
        next_(next) {}

  void handle(Packet pkt) override;

  /// Downstream handler can be set after construction to break wiring cycles.
  void set_next(PacketHandler* next) { next_ = next; }

  /// Invoked with the wire size of every packet that starts transmission
  /// (used by the host energy meter to track the Gb/s term).
  void set_on_transmit(std::function<void(units::Bytes)> cb) {
    on_transmit_ = std::move(cb);
  }

  /// Subscribe to drops: `cb` is invoked with the wire size of every packet
  /// the queue rejects (the receiver's energy meter charges DMA+first-touch
  /// work for these; the fault layer and tests subscribe too). Subscribers
  /// run in registration order and cannot be removed — components register
  /// once at wiring time.
  void add_on_drop(std::function<void(units::Bytes)> cb) {
    on_drop_.push_back(std::move(cb));
  }

  /// Backwards-compatible alias for add_on_drop (historically the port held
  /// a single callback; it now appends).
  void set_on_drop(std::function<void(units::Bytes)> cb) {
    add_on_drop(std::move(cb));
  }

  /// Change the line rate mid-run (FaultSchedule's bandwidth events). The
  /// packet currently serializing finishes at the old rate; the next
  /// transmission picks up the new one. Must be > 0.
  void set_rate(units::BitRate rate) { config_.rate = rate; }

  /// Change the propagation delay mid-run. Packets already serialized keep
  /// the delay they departed with; the next one to finish serialization
  /// propagates at the new value.
  void set_propagation(sim::SimTime propagation) {
    config_.propagation = propagation;
  }

  /// Attach this run's event sink (nullptr = tracing off). When off, the
  /// packet path pays exactly one branch per event site. The port emits
  /// enqueue events; the queue emits drop and ECN-mark events under this
  /// port's name.
  void set_trace(trace::TraceSink* sink) {
    trace_ = sink;
    queue_.set_trace(sink, name_);
  }

  /// Register this port's queue and transmit counters under its name
  /// ("<name>.enqueued", "<name>.dropped", ...).
  void register_counters(trace::CounterRegistry& reg) const;

  /// Attach the run's drop ledger to this port's queue.
  void set_ledger(check::PacketLedger* ledger) { queue_.set_ledger(ledger); }

  /// Cross-check the transmit counters against the queue's dequeue books
  /// and verify the port is never idle with a backlog; see
  /// InvariantAuditor. Appends discrepancies to `problems`.
  void audit(std::vector<std::string>& problems) const;

  const QueueStats& queue_stats() const { return queue_.stats(); }
  units::Bytes queue_bytes() const { return queue_.bytes(); }
  std::size_t queue_packets() const { return queue_.packets(); }
  std::uint64_t packets_sent() const { return packets_sent_; }
  units::Bytes bytes_sent() const { return bytes_sent_; }
  bool transmitting() const { return transmitting_; }
  const std::string& name() const { return name_; }
  const PortConfig& config() const { return config_; }

 private:
  friend struct check::AuditCorruptor;  // tests corrupt private state

  void start_transmission();

  sim::Simulator& sim_;
  std::string name_;
  PortConfig config_;
  DropTailQueue queue_;
  PacketHandler* next_;
  trace::TraceSink* trace_ = nullptr;
  std::function<void(units::Bytes)> on_transmit_;
  std::vector<std::function<void(units::Bytes)>> on_drop_;
  bool transmitting_ = false;
  double pending_drop_penalty_ns_ = 0.0;
  std::uint64_t packets_sent_ = 0;
  units::Bytes bytes_sent_;
};

}  // namespace greencc::net
