#include "net/queue.h"

#include <algorithm>
#include <cmath>

#include "check/ledger.h"

namespace greencc::net {

DropTailQueue::DropTailQueue(units::Bytes capacity_bytes,
                             units::Bytes ecn_threshold_bytes,
                             std::size_t capacity_packets)
    : capacity_bytes_(capacity_bytes),
      capacity_packets_(capacity_packets),
      rng_(AqmConfig{}.red_seed) {
  if (ecn_threshold_bytes > units::Bytes::zero()) {
    aqm_.mode = AqmMode::kStepEcn;
    aqm_.step_threshold_bytes = ecn_threshold_bytes;
  }
}

DropTailQueue::DropTailQueue(units::Bytes capacity_bytes,
                             const AqmConfig& aqm,
                             std::size_t capacity_packets)
    : capacity_bytes_(capacity_bytes),
      capacity_packets_(capacity_packets),
      aqm_(aqm),
      rng_(aqm.red_seed) {}

void DropTailQueue::trace_event(trace::EventClass cls, const Packet& pkt,
                                sim::SimTime now) const {
  trace_->emit(
      {now, cls, pkt.flow, trace_src_, pkt.seq, static_cast<double>(bytes_.count())});
}

bool DropTailQueue::fits(const Packet& pkt) const {
  if (bytes_ + pkt.size_bytes > capacity_bytes_) return false;
  if (capacity_packets_ > 0 && entries_.size() >= capacity_packets_) {
    return false;
  }
  return true;
}

void DropTailQueue::push(Packet pkt, sim::SimTime now) {
  bytes_ += pkt.size_bytes;
  stats_.max_bytes_seen = std::max(stats_.max_bytes_seen, bytes_);
  ++stats_.enqueued;
  stats_.enqueued_bytes += pkt.size_bytes;
  entries_.push_back({pkt, now});
  stats_.max_packets_seen =
      std::max(stats_.max_packets_seen,
               static_cast<std::uint64_t>(entries_.size()));
}

Packet DropTailQueue::pop() {
  Packet pkt = entries_.front().pkt;
  entries_.pop_front();
  bytes_ -= pkt.size_bytes;
  return pkt;
}

bool DropTailQueue::red_admit(Packet& pkt, sim::SimTime now) {
  // Idle correction: an empty queue ages the average as if (idle / s)
  // minimum-size packets had passed (Floyd & Jacobson, section 3).
  if (red_was_empty_ && entries_.empty()) {
    const double idle_packets =
        (now - red_empty_since_).sec() / aqm_.red_idle_packet_time.sec();
    if (idle_packets > 0) {
      red_avg_ *= std::pow(1.0 - aqm_.red_weight, idle_packets);
    }
    // This arrival accounts the idle period whether or not RED then drops
    // the packet: restart the idle clock so a following arrival does not
    // decay the average for the same interval a second time. (Previously
    // only a successful enqueue cleared the idle state, so a RED drop left
    // it stale and the correction was re-applied.)
    red_empty_since_ = now;
  }
  red_avg_ = (1.0 - aqm_.red_weight) * red_avg_ +
             aqm_.red_weight * static_cast<double>(bytes_.count());
  if (red_avg_ < static_cast<double>(aqm_.red_min_bytes.count())) {
    red_count_ = -1;
    return true;
  }
  double p;
  if (red_avg_ >= static_cast<double>(aqm_.red_max_bytes.count())) {
    p = 1.0;
  } else {
    p = aqm_.red_max_probability *
        (red_avg_ - static_cast<double>(aqm_.red_min_bytes.count())) /
        static_cast<double>((aqm_.red_max_bytes - aqm_.red_min_bytes).count());
    // Uniformize inter-mark spacing (the count correction of the paper).
    ++red_count_;
    const double denom = 1.0 - static_cast<double>(red_count_) * p;
    if (denom > 0) p = std::min(1.0, p / denom);
  }
  if (rng_.next_double() < p) {
    red_count_ = 0;
    if (pkt.ecn_capable &&
        red_avg_ < static_cast<double>(aqm_.red_max_bytes.count())) {
      pkt.ce = true;
      ++stats_.ecn_marked;
      if (trace_) trace_event(trace::EventClass::kEcnMark, pkt, now);
      return true;  // marked, still enqueued
    }
    return false;  // dropped by RED
  }
  return true;
}

bool DropTailQueue::enqueue(Packet pkt, sim::SimTime now) {
  if (!fits(pkt)) {
    ++stats_.dropped;
    if (ledger_) ledger_->on_drop(pkt);
    if (trace_) trace_event(trace::EventClass::kDrop, pkt, now);
    return false;
  }
  switch (aqm_.mode) {
    case AqmMode::kNone:
    case AqmMode::kCodel:  // CoDel acts at dequeue time
      break;
    case AqmMode::kStepEcn:
      if (aqm_.step_threshold_bytes > units::Bytes::zero() && pkt.ecn_capable &&
          bytes_ >= aqm_.step_threshold_bytes) {
        pkt.ce = true;
        ++stats_.ecn_marked;
        if (trace_) trace_event(trace::EventClass::kEcnMark, pkt, now);
      }
      break;
    case AqmMode::kRed:
      if (!red_admit(pkt, now)) {
        ++stats_.dropped;
        if (ledger_) ledger_->on_drop(pkt);
        if (trace_) trace_event(trace::EventClass::kDrop, pkt, now);
        return false;
      }
      break;
  }
  push(pkt, now);
  red_was_empty_ = false;
  return true;
}

void DropTailQueue::codel_prune(sim::SimTime now) {
  // CoDel: while the head's sojourn time has exceeded `target` for at
  // least one `interval`, drop heads at a rate that grows with the square
  // root of the drop count.
  while (!entries_.empty()) {
    const sim::SimTime sojourn = now - entries_.front().enqueued_at;
    if (sojourn < aqm_.codel_target || bytes_ <= 2 * aqm_.mtu_bytes) {
      // Below target (or nearly empty): leave dropping state.
      codel_first_above_ = sim::SimTime::zero();
      codel_dropping_ = false;
      return;
    }
    if (!codel_dropping_) {
      if (codel_first_above_ == sim::SimTime::zero()) {
        codel_first_above_ = now + aqm_.codel_interval;
        return;  // give the queue one interval to drain on its own
      }
      if (now < codel_first_above_) return;
      // Entered the dropping state.
      codel_dropping_ = true;
      codel_drop_count_ = codel_drop_count_ > 2 ? codel_drop_count_ - 2 : 1;
      codel_next_drop_ = now;
    }
    if (now < codel_next_drop_) return;
    Packet dropped = pop();
    ++stats_.dropped;
    ++stats_.dropped_head;
    stats_.dropped_head_bytes += dropped.size_bytes;
    if (ledger_) ledger_->on_drop(dropped);
    if (trace_) trace_event(trace::EventClass::kDrop, dropped, now);
    ++codel_drop_count_;
    codel_next_drop_ =
        now + aqm_.codel_interval.scaled(
                  1.0 / std::sqrt(static_cast<double>(codel_drop_count_)));
  }
}

std::optional<Packet> DropTailQueue::dequeue(sim::SimTime now) {
  if (aqm_.mode == AqmMode::kCodel) codel_prune(now);
  if (entries_.empty()) return std::nullopt;
  Packet pkt = pop();
  ++stats_.dequeued;
  stats_.dequeued_bytes += pkt.size_bytes;
  if (entries_.empty()) {
    red_was_empty_ = true;
    red_empty_since_ = now;
  }
  return pkt;
}

void DropTailQueue::audit(std::vector<std::string>& problems) const {
  units::Bytes listed_bytes;
  for (const auto& entry : entries_) listed_bytes += entry.pkt.size_bytes;
  if (listed_bytes != bytes_) {
    problems.push_back("cached bytes " + std::to_string(bytes_.count()) +
                       " != sum over entries " + std::to_string(listed_bytes.count()));
  }
  if (bytes_ < units::Bytes::zero()) {
    problems.push_back("byte occupancy negative: " + std::to_string(bytes_.count()));
  }
  const std::uint64_t accounted =
      stats_.dequeued + stats_.dropped_head +
      static_cast<std::uint64_t>(entries_.size());
  if (stats_.enqueued != accounted) {
    problems.push_back(
        "packet books do not balance: enqueued " +
        std::to_string(stats_.enqueued) + " != dequeued " +
        std::to_string(stats_.dequeued) + " + head-dropped " +
        std::to_string(stats_.dropped_head) + " + queued " +
        std::to_string(entries_.size()));
  }
  const units::Bytes accounted_bytes =
      stats_.dequeued_bytes + stats_.dropped_head_bytes + bytes_;
  if (stats_.enqueued_bytes != accounted_bytes) {
    problems.push_back(
        "byte books do not balance: enqueued " +
        std::to_string(stats_.enqueued_bytes.count()) + " != dequeued " +
        std::to_string(stats_.dequeued_bytes.count()) + " + head-dropped " +
        std::to_string(stats_.dropped_head_bytes.count()) + " + queued " +
        std::to_string(bytes_.count()));
  }
  if (stats_.dropped_head > stats_.dropped) {
    problems.push_back("head drops " + std::to_string(stats_.dropped_head) +
                       " exceed total drops " + std::to_string(stats_.dropped));
  }
  if (stats_.max_bytes_seen < bytes_) {
    problems.push_back("byte high-water " +
                       std::to_string(stats_.max_bytes_seen.count()) +
                       " below current occupancy " + std::to_string(bytes_.count()));
  }
  if (stats_.max_packets_seen < entries_.size()) {
    problems.push_back("packet high-water " +
                       std::to_string(stats_.max_packets_seen) +
                       " below current occupancy " +
                       std::to_string(entries_.size()));
  }
  if (capacity_bytes_ > units::Bytes::zero() && bytes_ > capacity_bytes_) {
    problems.push_back("occupancy " + std::to_string(bytes_.count()) +
                       " exceeds byte capacity " +
                       std::to_string(capacity_bytes_.count()));
  }
  if (capacity_packets_ > 0 && entries_.size() > capacity_packets_) {
    problems.push_back("occupancy " + std::to_string(entries_.size()) +
                       " exceeds packet capacity " +
                       std::to_string(capacity_packets_));
  }
}

}  // namespace greencc::net
