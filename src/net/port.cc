#include "net/port.h"

namespace greencc::net {

void QueuedPort::handle(Packet pkt) {
  // Tracing off: trace_ is nullptr and each site is one untaken branch —
  // the traced-off path must stay at current speed (guarded by
  // bench/ablation_trace_overhead). Drop and ECN-mark events are emitted
  // by the queue itself, which sees every AQM decision (CoDel drops at
  // dequeue time, where this port never handles the packet).
  if (!queue_.enqueue(pkt, sim_.now())) {  // tail drop or AQM
    pending_drop_penalty_ns_ += config_.drop_service_ns;
    for (const auto& cb : on_drop_) cb(pkt.size_bytes);
    return;
  }
  if (trace_) {
    trace_->emit({sim_.now(), trace::EventClass::kEnqueue, pkt.flow, name_,
                  pkt.seq, static_cast<double>(queue_.bytes().count())});
  }
  if (!transmitting_) start_transmission();
}

void QueuedPort::register_counters(trace::CounterRegistry& reg) const {
  const QueueStats* stats = &queue_.stats();
  reg.add(name_ + ".enqueued", &stats->enqueued);
  reg.add(name_ + ".dropped", &stats->dropped);
  reg.add(name_ + ".ecn_marked", &stats->ecn_marked);
  reg.add(name_ + ".peak_bytes", &stats->max_bytes_seen);
  reg.add(name_ + ".peak_packets", &stats->max_packets_seen);
  reg.add(name_ + ".packets_sent", &packets_sent_);
  reg.add(name_ + ".bytes_sent", &bytes_sent_);
}

void QueuedPort::audit(std::vector<std::string>& problems) const {
  const QueueStats& stats = queue_.stats();
  // Every transmitted packet was dequeued by this port, and CoDel head
  // drops are the only other way out of the queue.
  const std::uint64_t expected_sent = stats.dequeued;
  if (packets_sent_ != expected_sent) {
    problems.push_back("packets_sent " + std::to_string(packets_sent_) +
                       " != queue dequeued " + std::to_string(expected_sent));
  }
  if (bytes_sent_ != stats.dequeued_bytes) {
    problems.push_back("bytes_sent " + std::to_string(bytes_sent_.count()) +
                       " != queue dequeued_bytes " +
                       std::to_string(stats.dequeued_bytes.count()));
  }
  // Work-conserving transmitter: an idle port implies an empty queue (the
  // converse does not hold — the last packet may still be serializing).
  if (!transmitting_ && !queue_.empty()) {
    problems.push_back("idle transmitter with " +
                       std::to_string(queue_.packets()) +
                       " packet(s) backlogged");
  }
  queue_.audit(problems);
}

void QueuedPort::start_transmission() {
  auto pkt = queue_.dequeue(sim_.now());
  if (!pkt) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  ++packets_sent_;
  bytes_sent_ += pkt->size_bytes;
  if (on_transmit_) on_transmit_(pkt->size_bytes);
  // Stamp in-band telemetry at departure (INT sink is the receiver).
  if (pkt->int_enabled && pkt->int_count < pkt->int_hops.size()) {
    auto& hop = pkt->int_hops[pkt->int_count++];
    hop.tx_bytes = bytes_sent_;
    hop.qlen_bytes = queue_.bytes();
    hop.ts = sim_.now();
    // Report the *effective* service rate for this packet size: a
    // processing stage with per-packet overhead drains slower than its
    // nominal bit rate, and that is the utilization INT readers must see.
    const double bits =
        static_cast<double>(pkt->size_bytes.count()) * units::kBitsPerByteF;
    hop.link_rate =
        config_.per_packet_ns > 0.0
            ? units::BitRate::bps(bits / (bits / config_.rate.bps() +
                                          config_.per_packet_ns * 1e-9))
            : config_.rate;
  }
  const sim::SimTime ser =
      pkt->size_bytes / config_.rate +
      sim::SimTime::nanoseconds(static_cast<std::int64_t>(
          config_.per_packet_ns + pending_drop_penalty_ns_));
  pending_drop_penalty_ns_ = 0.0;
  // Deliver after serialization + propagation; free the transmitter after
  // serialization only.
  sim_.schedule(ser, [this, p = *pkt]() mutable {
    sim_.schedule(config_.propagation,
                  [this, p]() mutable { next_->handle(p); });
    start_transmission();
  });
}

}  // namespace greencc::net
