#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "net/port.h"
#include "sim/simulator.h"

namespace greencc::net {

/// Output-queued switch.
///
/// Ingress is non-blocking (the paper's Tofino forwards at line rate across
/// all ports); contention happens only at the egress port queue of the
/// destination, which is exactly where the 10 Gb/s bottleneck of every
/// experiment lives. Forwarding is by destination host id.
class Switch : public PacketHandler {
 public:
  explicit Switch(sim::Simulator& sim, std::string name = "switch")
      : sim_(sim), name_(std::move(name)) {}

  /// Create the egress port towards `host` and return it (for wiring the
  /// downstream handler and reading stats).
  QueuedPort& add_egress(HostId host, const PortConfig& config,
                         PacketHandler* next);

  void handle(Packet pkt) override;

  /// Attach this run's event sink to every egress port (see
  /// QueuedPort::set_trace). Ports added later are not retro-wired; the
  /// scenario wires them at creation.
  void set_trace(trace::TraceSink* sink);

  /// Register "<name>.unroutable_packets" plus every egress port's queue
  /// and transmit counters.
  void register_counters(trace::CounterRegistry& reg) const;

  /// Attach the run's drop ledger to every egress port. Like set_trace,
  /// ports added later are not retro-wired.
  void set_ledger(check::PacketLedger* ledger);

  /// Audit every egress port (in host order, for deterministic reports)
  /// and flag any unroutable packets — a wired topology routes everything.
  void audit(std::vector<std::string>& problems) const;

  QueuedPort& egress(HostId host);
  std::uint64_t unroutable_packets() const { return unroutable_; }
  std::int64_t total_queued_packets() const;

 private:
  friend struct check::AuditCorruptor;  // tests corrupt private state

  sim::Simulator& sim_;
  std::string name_;
  std::unordered_map<HostId, std::unique_ptr<QueuedPort>> egress_;
  std::uint64_t unroutable_ = 0;
};

/// Bonded sender NIC: `n` physical ports sprayed round-robin per packet, as
/// in the paper's 2x10 Gb/s sender bond ("packets are sent round-robin among
/// the two"), ensuring the switch — not the sender NIC — is the bottleneck.
class BondedNic : public PacketHandler {
 public:
  BondedNic(sim::Simulator& sim, std::string name, int num_ports,
            const PortConfig& port_config, PacketHandler* next);

  void handle(Packet pkt) override;

  /// Register a transmit-bytes callback across all member ports.
  void set_on_transmit(std::function<void(units::Bytes)> cb);

  /// Attach this run's event sink to every member port.
  void set_trace(trace::TraceSink* sink);

  /// Register every member port's counters.
  void register_counters(trace::CounterRegistry& reg) const;

  /// Attach the run's drop ledger to every member port.
  void set_ledger(check::PacketLedger* ledger);

  /// Audit every member port and the round-robin spray cursor.
  void audit(std::vector<std::string>& problems) const;

  QueuedPort& port(int i) { return *ports_.at(static_cast<std::size_t>(i)); }
  int num_ports() const { return static_cast<int>(ports_.size()); }
  units::Bytes bytes_sent() const;
  std::int64_t total_queued_packets() const;

 private:
  friend struct check::AuditCorruptor;  // tests corrupt private state

  std::vector<std::unique_ptr<QueuedPort>> ports_;
  std::size_t next_port_ = 0;
};

}  // namespace greencc::net
