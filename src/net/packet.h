#pragma once

#include <array>
#include <cstdint>

#include "sim/time.h"
#include "units/units.h"

namespace greencc::net {

using FlowId = std::uint64_t;
using HostId = std::uint32_t;

/// One SACK block: segments in [start, end) have been received.
struct SackBlock {
  std::int64_t start = 0;
  std::int64_t end = 0;
  bool empty() const { return end <= start; }
};

/// One hop's in-band network telemetry record (INT), as a Tofino-class
/// programmable switch would stamp it: cumulative bytes transmitted by the
/// egress port, its queue depth, the local timestamp and the port speed.
/// HPCC computes per-link utilization from consecutive records.
struct IntRecord {
  units::Bytes tx_bytes;        ///< cumulative bytes sent by this port
  units::Bytes qlen_bytes;      ///< queue depth when this packet departed
  sim::SimTime ts;              ///< departure timestamp
  units::BitRate link_rate;     ///< effective port speed
};

/// A simulated packet. Sequence numbers index MSS-sized segments rather than
/// bytes — congestion control in the Linux kernel is likewise
/// packet-oriented — while `size_bytes` carries the wire size used for
/// serialization, queue occupancy and energy accounting.
///
/// Packets are small value types: there is no payload, only metadata, so
/// copying one is cheaper than any indirection.
struct Packet {
  FlowId flow = 0;
  HostId src = 0;
  HostId dst = 0;

  bool is_ack = false;
  std::int64_t seq = 0;        ///< data: segment index being carried
  std::int64_t ack_seq = 0;    ///< ack: next expected segment (cumulative)
  units::Bytes size_bytes;     ///< wire size incl. headers

  /// Up to 3 SACK blocks (the TCP option also fits at most 3-4).
  std::array<SackBlock, 3> sack{};

  // --- ECN (RFC 3168 / DCTCP) ---
  bool ecn_capable = false;  ///< ECT set by sender
  bool ce = false;           ///< congestion experienced, set by the switch
  bool ece = false;          ///< ack: echoes CE of the acked data
  std::int32_t ece_count = 0;  ///< ack: CE-marked segments since last ACK
                               ///< (DCTCP's accurate-ECN style feedback)

  // --- in-band network telemetry (HPCC) ---
  bool int_enabled = false;           ///< sender requests INT stamping
  std::uint8_t int_count = 0;         ///< hops recorded so far
  std::array<IntRecord, 4> int_hops{};

  // --- timestamps & delivery bookkeeping (RTT and BBR rate samples) ---
  sim::SimTime sent_time;              ///< when this packet left the sender
  std::int64_t delivered_at_send = 0;  ///< sender's delivered count at send
  sim::SimTime delivered_time_at_send; ///< time of that delivery count
  bool app_limited = false;            ///< sender was app-limited at send
  bool is_retx = false;                ///< retransmission of an earlier seq

  /// Payload damaged in flight (fault injection). The wire carries the
  /// packet normally — it costs bandwidth and receiver processing — but the
  /// receiving endpoint's checksum rejects it, so the transport never sees
  /// it. Set only by fault::ImpairedLink.
  bool corrupted = false;
};

/// Anything that can accept a packet (switch port, host stack, sink).
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle(Packet pkt) = 0;
};

}  // namespace greencc::net
