#include "net/drr.h"

#include <cassert>
#include <stdexcept>

namespace greencc::net {

DrrPort::FlowState& DrrPort::flow_state(FlowId flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    FlowState state;
    state.queue =
        std::make_unique<DropTailQueue>(config_.per_flow_queue_bytes);
    it = flows_.emplace(flow, std::move(state)).first;
  }
  return it->second;
}

void DrrPort::set_weight(FlowId flow, double weight) {
  if (weight <= 0.0) {
    throw std::invalid_argument("DrrPort::set_weight: weight must be > 0");
  }
  flow_state(flow).weight = weight;
}

std::int64_t DrrPort::queued_bytes(FlowId flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.queue->bytes();
}

std::int64_t DrrPort::total_queued_bytes() const {
  std::int64_t total = 0;
  for (const auto& [flow, state] : flows_) total += state.queue->bytes();
  return total;
}

void DrrPort::handle(Packet pkt) {
  FlowState& state = flow_state(pkt.flow);
  if (!state.queue->enqueue(pkt, sim_.now())) {
    ++dropped_;
    return;
  }
  if (!state.in_round) {
    state.in_round = true;
    state.deficit = 0;
    active_.push_back(pkt.flow);
  }
  if (!transmitting_) start_transmission();
}

void DrrPort::start_transmission() {
  // Classic DRR, one packet per transmission slot: visit flows round-robin,
  // top each flow's deficit up by weight * quantum on arrival, and send its
  // head packets while the deficit covers them. A flow that empties leaves
  // the round (and forfeits its deficit); a flow whose deficit is exhausted
  // keeps the remainder for its next visit.
  int safety = 100'000;  // progress is guaranteed; this guards regressions
  while (!active_.empty()) {
    --safety;
    assert(safety > 0 && "DrrPort: scheduler failed to make progress");
    if (safety <= 0) break;
    if (round_index_ >= active_.size()) round_index_ = 0;
    const FlowId flow = active_[round_index_];
    FlowState& state = flows_.at(flow);

    if (state.queue->empty()) {
      state.in_round = false;
      state.deficit = 0;
      active_.erase(active_.begin() +
                    static_cast<std::ptrdiff_t>(round_index_));
      topped_up_ = false;
      continue;
    }

    if (!topped_up_) {
      state.deficit += static_cast<std::int64_t>(
          state.weight * static_cast<double>(config_.base_quantum_bytes));
      topped_up_ = true;
    }

    const Packet* head = state.queue->peek();
    if (state.deficit >= head->size_bytes) {
      const Packet pkt = *state.queue->dequeue(sim_.now());
      state.deficit -= pkt.size_bytes;
      if (state.queue->empty()) {
        state.in_round = false;
        state.deficit = 0;
        active_.erase(active_.begin() +
                      static_cast<std::ptrdiff_t>(round_index_));
        topped_up_ = false;
      }
      transmitting_ = true;
      ++packets_sent_;
      const sim::SimTime ser =
          sim::serialization_delay(pkt.size_bytes, config_.rate_bps);
      sim_.schedule(ser, [this, pkt] {
        sim_.schedule(config_.propagation,
                      [this, pkt] { next_->handle(pkt); });
        transmitting_ = false;
        start_transmission();
      });
      return;
    }

    // Deficit exhausted for this visit: move on, keeping the remainder.
    ++round_index_;
    topped_up_ = false;
  }
  transmitting_ = false;
}

}  // namespace greencc::net
