#include "net/drr.h"

#include <algorithm>
#include <stdexcept>

#include "check/check.h"
#include "check/ledger.h"

namespace greencc::net {

DrrPort::FlowState& DrrPort::flow_state(FlowId flow) {
  FlowState& state = flows_[flow];
  if (!state.queue) {
    state.queue =
        std::make_unique<DropTailQueue>(config_.per_flow_queue_bytes);
    state.queue->set_ledger(ledger_);
  }
  return state;
}

void DrrPort::set_ledger(check::PacketLedger* ledger) {
  ledger_ = ledger;
  flows_.for_each(
      [ledger](FlowId, FlowState& state) { state.queue->set_ledger(ledger); });
}

void DrrPort::set_weight(FlowId flow, double weight) {
  if (weight <= 0.0) {
    throw std::invalid_argument("DrrPort::set_weight: weight must be > 0");
  }
  flow_state(flow).weight = weight;
}

units::Bytes DrrPort::queued_bytes(FlowId flow) const {
  const FlowState* state = flows_.find(flow);
  return state == nullptr ? units::Bytes::zero() : state->queue->bytes();
}

units::Bytes DrrPort::total_queued_bytes() const {
  units::Bytes total;
  flows_.for_each([&total](FlowId, const FlowState& state) {
    total += state.queue->bytes();
  });
  return total;
}

std::int64_t DrrPort::total_queued_packets() const {
  std::int64_t total = 0;
  flows_.for_each([&total](FlowId, const FlowState& state) {
    total += static_cast<std::int64_t>(state.queue->packets());
  });
  return total;
}

void DrrPort::audit(std::vector<std::string>& problems) const {
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const FlowId flow = active_[i];
    const FlowState* state = flows_.find(flow);
    if (state == nullptr) {
      problems.push_back("active list holds unknown flow " +
                         std::to_string(flow));
      continue;
    }
    if (!state->in_round) {
      problems.push_back("flow " + std::to_string(flow) +
                         " on the active list but not marked in_round");
    }
    if (std::count(active_.begin(), active_.end(), flow) > 1) {
      problems.push_back("flow " + std::to_string(flow) +
                         " appears more than once on the active list");
    }
  }
  flows_.for_each([&](FlowId flow, const FlowState& state) {
    const bool listed =
        std::find(active_.begin(), active_.end(), flow) != active_.end();
    if (state.in_round != listed) {
      problems.push_back("flow " + std::to_string(flow) + " in_round=" +
                         (state.in_round ? "true" : "false") +
                         " disagrees with active-list membership");
    }
    // A backlogged flow must be scheduled — unless the head packet of a
    // transmission is still serializing (then the flow re-enters on the
    // completion event). in_round=false with a backlog is only legal while
    // transmitting_ covers exactly that window.
    if (!state.queue->empty() && !state.in_round && !transmitting_) {
      problems.push_back("flow " + std::to_string(flow) +
                         " backlogged but absent from an idle scheduler");
    }
    if (state.deficit < units::Bytes::zero()) {
      problems.push_back("flow " + std::to_string(flow) +
                         " has negative deficit " +
                         std::to_string(state.deficit.count()));
    }
    if (!state.in_round && state.deficit != units::Bytes::zero()) {
      problems.push_back("flow " + std::to_string(flow) + " carries deficit " +
                         std::to_string(state.deficit.count()) +
                         " while out of the round");
    }
    if (state.weight <= 0.0) {
      problems.push_back("flow " + std::to_string(flow) +
                         " has non-positive weight " +
                         std::to_string(state.weight));
    }
    const std::size_t before = problems.size();
    state.queue->audit(problems);
    for (std::size_t i = before; i < problems.size(); ++i) {
      problems[i] = "flow " + std::to_string(flow) + " queue: " + problems[i];
    }
  });
  if (round_index_ > active_.size()) {
    problems.push_back("round index " + std::to_string(round_index_) +
                       " beyond active list size " +
                       std::to_string(active_.size()));
  }
}

void DrrPort::handle(Packet pkt) {
  FlowState& state = flow_state(pkt.flow);
  if (!state.queue->enqueue(pkt, sim_.now())) {
    ++dropped_;
    return;
  }
  if (!state.in_round) {
    state.in_round = true;
    state.deficit = units::Bytes::zero();
    active_.push_back(pkt.flow);
  }
  if (!transmitting_) start_transmission();
}

void DrrPort::start_transmission() {
  // Classic DRR, one packet per transmission slot: visit flows round-robin,
  // top each flow's deficit up by weight * quantum on arrival, and send its
  // head packets while the deficit covers them. A flow that empties leaves
  // the round (and forfeits its deficit); a flow whose deficit is exhausted
  // keeps the remainder for its next visit.
  int safety = 100'000;  // progress is guaranteed; this guards regressions
  while (!active_.empty()) {
    --safety;
    GREENCC_CHECK(safety > 0)
        << "DrrPort " << name_ << ": scheduler failed to make progress with "
        << active_.size() << " active flow(s), round_index=" << round_index_
        << ", total backlog " << total_queued_bytes().count() << " bytes";
    if (safety <= 0) break;
    if (round_index_ >= active_.size()) round_index_ = 0;
    const FlowId flow = active_[round_index_];
    FlowState& state = flows_.at(flow);

    if (state.queue->empty()) {
      state.in_round = false;
      state.deficit = units::Bytes::zero();
      active_.erase(active_.begin() +
                    static_cast<std::ptrdiff_t>(round_index_));
      topped_up_ = false;
      continue;
    }

    if (!topped_up_) {
      state.deficit += units::Bytes{static_cast<std::int64_t>(
          state.weight *
          static_cast<double>(config_.base_quantum_bytes.count()))};
      topped_up_ = true;
    }

    const Packet* head = state.queue->peek();
    if (state.deficit >= head->size_bytes) {
      const Packet pkt = *state.queue->dequeue(sim_.now());
      state.deficit -= pkt.size_bytes;
      if (state.queue->empty()) {
        state.in_round = false;
        state.deficit = units::Bytes::zero();
        active_.erase(active_.begin() +
                      static_cast<std::ptrdiff_t>(round_index_));
        topped_up_ = false;
      }
      transmitting_ = true;
      ++packets_sent_;
      const sim::SimTime ser = pkt.size_bytes / config_.rate;
      sim_.schedule(ser, [this, pkt] {
        sim_.schedule(config_.propagation,
                      [this, pkt] { next_->handle(pkt); });
        transmitting_ = false;
        start_transmission();
      });
      return;
    }

    // Deficit exhausted for this visit: move on, keeping the remainder.
    ++round_index_;
    topped_up_ = false;
  }
  transmitting_ = false;
}

}  // namespace greencc::net
