#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace greencc::check {
class PacketLedger;
struct AuditCorruptor;
}  // namespace greencc::check

namespace greencc::net {

/// Statistics kept by every queue; benches and tests read these.
///
/// The counters are double-entry books for the audit layer: packets that
/// were admitted (`enqueued`) either left through the front (`dequeued`),
/// were head-dropped by CoDel (`dropped_head`) or are still queued, and
/// the same holds for the byte-unit columns. `dropped` counts every drop —
/// tail, RED and CoDel head — so `dropped >= dropped_head` always;
/// tail/RED-dropped packets were never admitted and appear in no other
/// column.
struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t dropped_head = 0;  ///< CoDel head drops (subset of dropped)
  std::uint64_t ecn_marked = 0;
  units::Bytes enqueued_bytes;
  units::Bytes dequeued_bytes;
  units::Bytes dropped_head_bytes;
  /// Peak occupancy over the queue's lifetime, in both units. Queue-sizing
  /// claims (how much buffer a CCA actually needs) read these directly
  /// instead of requiring a trace run; the packet peak is what matters for
  /// packet-counted buffers like the receiver backlog.
  units::Bytes max_bytes_seen;
  std::uint64_t max_packets_seen = 0;
};

/// Queue management discipline applied on top of the tail-drop FIFO.
enum class AqmMode {
  kNone,     ///< pure tail drop
  kStepEcn,  ///< DCTCP-style step marking at a fixed threshold
  kRed,      ///< Random Early Detection (Floyd & Jacobson 1993): EWMA queue
             ///< average, probabilistic mark (ECT) or drop between thresholds
  kCodel,    ///< CoDel (Nichols & Jacobson 2012): sojourn-time-driven head
             ///< dropping with the sqrt control law
};

/// AQM parameters. Defaults are scaled for the 10 Gb/s / tens-of-us RTT
/// datacenter regime of the paper's testbed rather than the WAN values of
/// the original papers.
struct AqmConfig {
  AqmMode mode = AqmMode::kNone;

  // kStepEcn
  units::Bytes step_threshold_bytes;

  // kRed
  units::Bytes red_min_bytes{60'000};
  units::Bytes red_max_bytes{180'000};
  double red_max_probability = 0.1;
  double red_weight = 0.002;  ///< EWMA weight per arrival
  /// Typical packet transmission time, used to age the average across idle
  /// periods (the original paper's m = idle/s correction) — without it a
  /// drained queue keeps its stale high average and RED death-spirals
  /// low-BDP flows.
  sim::SimTime red_idle_packet_time = sim::SimTime::nanoseconds(1'200);
  std::uint64_t red_seed = 99;

  // kCodel
  sim::SimTime codel_target = sim::SimTime::microseconds(50);
  sim::SimTime codel_interval = sim::SimTime::milliseconds(1);

  /// Wire MTU of the traffic traversing this queue. CoDel leaves its
  /// dropping state once fewer than two MTUs' worth of bytes remain — the
  /// "nearly empty" guard of Nichols & Jacobson 2012. Scenario propagates
  /// the experiment's configured MTU here; a previous revision hardcoded
  /// the 9018-byte jumbo frame, which silently disabled CoDel entirely for
  /// 1500-byte-MTU experiments (the queue never drained below ~18 KB of
  /// small frames while standing).
  units::Bytes mtu_bytes{1'500};
};

/// Tail-drop FIFO with optional AQM, modelling one output queue.
///
/// Capacity is bytes and/or packets. Enqueue/dequeue take the current time
/// to drive RED's average and CoDel's sojourn logic; kNone/kStepEcn users
/// may pass the default zero.
class DropTailQueue {
 public:
  DropTailQueue(units::Bytes capacity_bytes,
                units::Bytes ecn_threshold_bytes = units::Bytes::zero(),
                std::size_t capacity_packets = 0);

  DropTailQueue(units::Bytes capacity_bytes, const AqmConfig& aqm,
                std::size_t capacity_packets = 0);

  /// Returns false (and counts a drop) if the packet did not fit or the
  /// AQM chose to drop it.
  bool enqueue(Packet pkt, sim::SimTime now = sim::SimTime::zero());

  /// Pop the head (CoDel may drop heads first), or nullopt when empty.
  std::optional<Packet> dequeue(sim::SimTime now = sim::SimTime::zero());

  /// The head packet without removing it, or nullptr when empty.
  const Packet* peek() const {
    return entries_.empty() ? nullptr : &entries_.front().pkt;
  }

  /// Attach this run's event sink (nullptr = off). The queue emits drop
  /// and ECN-mark events labelled `src` (its owning port's name); every
  /// drop site reports, including CoDel's dequeue-time head drops that the
  /// owning port never sees.
  void set_trace(trace::TraceSink* sink, std::string src) {
    trace_ = sink;
    trace_src_ = std::move(src);
  }

  /// Attach the run's drop ledger (nullptr = off). Every drop site reports
  /// the dropped packet so the auditor's per-flow conservation equation
  /// balances; see check::PacketLedger.
  void set_ledger(check::PacketLedger* ledger) { ledger_ = ledger; }

  /// Re-derive this queue's books from first principles and append a
  /// description of every discrepancy to `problems` (empty = healthy):
  /// cached byte/packet occupancy must match the entry list, and the
  /// enqueue/dequeue/head-drop counters must conserve in both units.
  void audit(std::vector<std::string>& problems) const;

  bool empty() const { return entries_.empty(); }
  units::Bytes bytes() const { return bytes_; }
  std::size_t packets() const { return entries_.size(); }
  units::Bytes capacity_bytes() const { return capacity_bytes_; }
  const QueueStats& stats() const { return stats_; }
  double red_average_bytes() const { return red_avg_; }

 private:
  friend struct check::AuditCorruptor;  // tests corrupt private state

  struct Entry {
    Packet pkt;
    sim::SimTime enqueued_at;
  };

  bool fits(const Packet& pkt) const;
  void push(Packet pkt, sim::SimTime now);
  Packet pop();
  bool red_admit(Packet& pkt, sim::SimTime now);
  void codel_prune(sim::SimTime now);
  void trace_event(trace::EventClass cls, const Packet& pkt,
                   sim::SimTime now) const;

  units::Bytes capacity_bytes_;
  std::size_t capacity_packets_;  ///< 0 = unlimited (bytes cap only)
  AqmConfig aqm_;
  sim::Rng rng_;
  units::Bytes bytes_;
  std::deque<Entry> entries_;
  QueueStats stats_;
  trace::TraceSink* trace_ = nullptr;
  std::string trace_src_;
  check::PacketLedger* ledger_ = nullptr;

  // RED state.
  double red_avg_ = 0.0;
  int red_count_ = -1;  ///< packets since last mark/drop
  sim::SimTime red_empty_since_ = sim::SimTime::zero();
  bool red_was_empty_ = true;

  // CoDel state.
  bool codel_dropping_ = false;
  sim::SimTime codel_first_above_ = sim::SimTime::zero();
  sim::SimTime codel_next_drop_ = sim::SimTime::zero();
  int codel_drop_count_ = 0;
};

}  // namespace greencc::net
