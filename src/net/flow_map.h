#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "check/check.h"
#include "net/packet.h"

namespace greencc::net {

/// Insert-only map from FlowId to per-flow state, backed by a chunked slab.
///
/// A fair-queueing port tracks state for every flow it has ever seen and
/// never removes any; `std::map` spends a node allocation and a pointer
/// chase per flow for what is really an append-mostly table. This container
/// keeps values in fixed-size slab chunks (stable addresses, one allocation
/// per kChunk flows) with a sorted (FlowId -> slot) index on the side:
/// appends of increasing FlowIds — the common case, flows are numbered in
/// creation order — are O(1), lookups are a binary search over a dense
/// vector, and key-order iteration (audits, ledger propagation, totals)
/// walks the index.
template <typename V>
class FlowMap {
 public:
  bool empty() const { return index_.empty(); }
  std::size_t size() const { return index_.size(); }

  bool contains(FlowId flow) const { return find(flow) != nullptr; }

  V* find(FlowId flow) {
    const auto it = lower_bound(flow);
    if (it == index_.end() || it->first != flow) return nullptr;
    return &slot(it->second);
  }
  const V* find(FlowId flow) const {
    const auto it = lower_bound(flow);
    if (it == index_.end() || it->first != flow) return nullptr;
    return &slot(it->second);
  }

  V& at(FlowId flow) {
    V* v = find(flow);
    GREENCC_CHECK(v != nullptr) << "FlowMap::at: unknown flow " << flow;
    return *v;
  }
  const V& at(FlowId flow) const {
    V* v = const_cast<FlowMap*>(this)->find(flow);
    GREENCC_CHECK(v != nullptr) << "FlowMap::at: unknown flow " << flow;
    return *v;
  }

  /// The entry for `flow`, default-constructed on first use. References
  /// stay valid forever (values never move between chunks).
  V& operator[](FlowId flow) {
    const auto it = lower_bound(flow);
    if (it != index_.end() && it->first == flow) return slot(it->second);
    const std::uint32_t new_slot = static_cast<std::uint32_t>(next_slot_++);
    if (new_slot % kChunk == 0) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    index_.insert(it, {flow, new_slot});
    return slot(new_slot);
  }

  /// Key-order traversal: calls fn(FlowId, V&) for every flow.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (const auto& [flow, s] : index_) fn(flow, slot(s));
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [flow, s] : index_) fn(flow, slot(s));
  }

 private:
  static constexpr std::size_t kChunk = 64;
  struct Chunk {
    V values[kChunk];
  };

  std::vector<std::pair<FlowId, std::uint32_t>>::const_iterator lower_bound(
      FlowId flow) const {
    // Fast path: append of the largest FlowId so far (flows are numbered in
    // creation order, so lazy first-touch insertions arrive ascending).
    if (index_.empty() || index_.back().first < flow) return index_.end();
    return std::lower_bound(
        index_.begin(), index_.end(), flow,
        [](const auto& entry, FlowId f) { return entry.first < f; });
  }
  std::vector<std::pair<FlowId, std::uint32_t>>::iterator lower_bound(
      FlowId flow) {
    if (index_.empty() || index_.back().first < flow) return index_.end();
    return std::lower_bound(
        index_.begin(), index_.end(), flow,
        [](const auto& entry, FlowId f) { return entry.first < f; });
  }

  V& slot(std::uint32_t s) { return chunks_[s / kChunk]->values[s % kChunk]; }
  const V& slot(std::uint32_t s) const {
    return chunks_[s / kChunk]->values[s % kChunk];
  }

  std::vector<std::pair<FlowId, std::uint32_t>> index_;  ///< sorted by FlowId
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t next_slot_ = 0;
};

}  // namespace greencc::net
