#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/flow_map.h"
#include "net/packet.h"
#include "net/queue.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace greencc::net {

/// Weighted fair egress port: per-flow queues served by Deficit Round Robin
/// (Shreedhar & Varghese 1996).
///
/// The paper enforces Fig 1's bandwidth split at the application (iperf3
/// -b); a Tofino-class switch could instead enforce it in the network with
/// per-flow scheduling weights. This port provides that alternative: flows
/// with weight w_i receive w_i / sum(w) of the link while backlogged, and
/// unused capacity redistributes (the scheduler is work-conserving).
class DrrPort : public PacketHandler {
 public:
  struct Config {
    units::BitRate rate = units::BitRate::gbps(10);
    sim::SimTime propagation = sim::SimTime::microseconds(5);
    units::Bytes per_flow_queue_bytes{1 << 19};   ///< 512 KiB per flow
    units::Bytes base_quantum_bytes{9'018};       ///< ~1 max-size frame
  };

  DrrPort(sim::Simulator& sim, std::string name, const Config& config,
          PacketHandler* next)
      : sim_(sim), name_(std::move(name)), config_(config), next_(next) {}

  /// Set a flow's scheduling weight (default 1.0). Must be positive.
  void set_weight(FlowId flow, double weight);

  void handle(Packet pkt) override;

  void set_next(PacketHandler* next) { next_ = next; }

  /// Attach the run's drop ledger; propagated to every per-flow queue,
  /// including ones created lazily by later arrivals.
  void set_ledger(check::PacketLedger* ledger);

  /// Verify scheduler bookkeeping: active-list membership matches queue
  /// backlogs (every backlogged flow is in exactly one round slot, no flow
  /// appears twice), deficits are non-negative and only carried by active
  /// flows, and each per-flow queue's own books balance.
  void audit(std::vector<std::string>& problems) const;

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t dropped() const { return dropped_; }
  units::Bytes queued_bytes(FlowId flow) const;
  units::Bytes total_queued_bytes() const;
  std::int64_t total_queued_packets() const;

 private:
  friend struct check::AuditCorruptor;  // tests corrupt private state

  struct FlowState {
    std::unique_ptr<DropTailQueue> queue;
    double weight = 1.0;
    units::Bytes deficit;
    bool in_round = false;  ///< currently on the active list
  };

  FlowState& flow_state(FlowId flow);
  void start_transmission();

  sim::Simulator& sim_;
  std::string name_;
  Config config_;
  PacketHandler* next_;
  FlowMap<FlowState> flows_;  ///< slab-backed; flows are never removed
  check::PacketLedger* ledger_ = nullptr;
  std::vector<FlowId> active_;  ///< round-robin list of backlogged flows
  std::size_t round_index_ = 0;
  bool topped_up_ = false;  ///< current flow already got this visit's quantum
  bool transmitting_ = false;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace greencc::net
