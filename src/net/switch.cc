#include "net/switch.h"

#include <stdexcept>

namespace greencc::net {

QueuedPort& Switch::add_egress(HostId host, const PortConfig& config,
                               PacketHandler* next) {
  auto port = std::make_unique<QueuedPort>(
      sim_, name_ + ":egress" + std::to_string(host), config, next);
  auto [it, inserted] = egress_.emplace(host, std::move(port));
  if (!inserted) {
    throw std::logic_error("Switch::add_egress: duplicate host " +
                           std::to_string(host));
  }
  return *it->second;
}

void Switch::handle(Packet pkt) {
  auto it = egress_.find(pkt.dst);
  if (it == egress_.end()) {
    ++unroutable_;
    return;
  }
  it->second->handle(pkt);
}

void Switch::set_trace(trace::TraceSink* sink) {
  for (auto& [host, port] : egress_) port->set_trace(sink);
}

void Switch::register_counters(trace::CounterRegistry& reg) const {
  reg.add(name_ + ".unroutable_packets", &unroutable_);
  for (const auto& [host, port] : egress_) port->register_counters(reg);
}

QueuedPort& Switch::egress(HostId host) {
  auto it = egress_.find(host);
  if (it == egress_.end()) {
    throw std::out_of_range("Switch::egress: unknown host " +
                            std::to_string(host));
  }
  return *it->second;
}

BondedNic::BondedNic(sim::Simulator& sim, std::string name, int num_ports,
                     const PortConfig& port_config, PacketHandler* next) {
  if (num_ports < 1) {
    throw std::invalid_argument("BondedNic: need at least one port");
  }
  for (int i = 0; i < num_ports; ++i) {
    ports_.push_back(std::make_unique<QueuedPort>(
        sim, name + ":port" + std::to_string(i), port_config, next));
  }
}

void BondedNic::handle(Packet pkt) {
  ports_[next_port_]->handle(pkt);
  next_port_ = (next_port_ + 1) % ports_.size();
}

void BondedNic::set_on_transmit(std::function<void(std::int64_t)> cb) {
  for (auto& port : ports_) port->set_on_transmit(cb);
}

void BondedNic::set_trace(trace::TraceSink* sink) {
  for (auto& port : ports_) port->set_trace(sink);
}

void BondedNic::register_counters(trace::CounterRegistry& reg) const {
  for (const auto& port : ports_) port->register_counters(reg);
}

std::int64_t BondedNic::bytes_sent() const {
  std::int64_t total = 0;
  for (const auto& port : ports_) total += port->bytes_sent();
  return total;
}

}  // namespace greencc::net
