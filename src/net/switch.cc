#include "net/switch.h"

#include <algorithm>
#include <stdexcept>

namespace greencc::net {

QueuedPort& Switch::add_egress(HostId host, const PortConfig& config,
                               PacketHandler* next) {
  auto port = std::make_unique<QueuedPort>(
      sim_, name_ + ":egress" + std::to_string(host), config, next);
  auto [it, inserted] = egress_.emplace(host, std::move(port));
  if (!inserted) {
    throw std::logic_error("Switch::add_egress: duplicate host " +
                           std::to_string(host));
  }
  return *it->second;
}

void Switch::handle(Packet pkt) {
  auto it = egress_.find(pkt.dst);
  if (it == egress_.end()) {
    ++unroutable_;
    return;
  }
  it->second->handle(pkt);
}

void Switch::set_trace(trace::TraceSink* sink) {
  // lint-allow: unordered-iter (applies to every port; order-insensitive)
  for (auto& [host, port] : egress_) port->set_trace(sink);
}

void Switch::register_counters(trace::CounterRegistry& reg) const {
  reg.add(name_ + ".unroutable_packets", &unroutable_);
  // lint-allow: unordered-iter (snapshot() sorts by name before reporting)
  for (const auto& [host, port] : egress_) port->register_counters(reg);
}

void Switch::set_ledger(check::PacketLedger* ledger) {
  // lint-allow: unordered-iter (applies to every port; order-insensitive)
  for (auto& [host, port] : egress_) port->set_ledger(ledger);
}

void Switch::audit(std::vector<std::string>& problems) const {
  if (unroutable_ > 0) {
    problems.push_back(std::to_string(unroutable_) +
                       " packet(s) arrived with no egress for their "
                       "destination");
  }
  // egress_ is an unordered_map; audit in host order so a report with
  // several findings reads the same across runs and platforms.
  std::vector<HostId> hosts;
  hosts.reserve(egress_.size());
  // lint-allow: unordered-iter (collected keys are sorted just below)
  for (const auto& [host, port] : egress_) hosts.push_back(host);
  std::sort(hosts.begin(), hosts.end());
  for (const HostId host : hosts) {
    const QueuedPort& port = *egress_.at(host);
    const std::size_t before = problems.size();
    port.audit(problems);
    for (std::size_t i = before; i < problems.size(); ++i) {
      problems[i] = port.name() + ": " + problems[i];
    }
  }
}

std::int64_t Switch::total_queued_packets() const {
  std::int64_t total = 0;
  // lint-allow: unordered-iter (commutative sum; order-insensitive)
  for (const auto& [host, port] : egress_) {
    total += static_cast<std::int64_t>(port->queue_packets());
  }
  return total;
}

QueuedPort& Switch::egress(HostId host) {
  auto it = egress_.find(host);
  if (it == egress_.end()) {
    throw std::out_of_range("Switch::egress: unknown host " +
                            std::to_string(host));
  }
  return *it->second;
}

BondedNic::BondedNic(sim::Simulator& sim, std::string name, int num_ports,
                     const PortConfig& port_config, PacketHandler* next) {
  if (num_ports < 1) {
    throw std::invalid_argument("BondedNic: need at least one port");
  }
  for (int i = 0; i < num_ports; ++i) {
    ports_.push_back(std::make_unique<QueuedPort>(
        sim, name + ":port" + std::to_string(i), port_config, next));
  }
}

void BondedNic::handle(Packet pkt) {
  ports_[next_port_]->handle(pkt);
  next_port_ = (next_port_ + 1) % ports_.size();
}

void BondedNic::set_on_transmit(std::function<void(units::Bytes)> cb) {
  for (auto& port : ports_) port->set_on_transmit(cb);
}

void BondedNic::set_trace(trace::TraceSink* sink) {
  for (auto& port : ports_) port->set_trace(sink);
}

void BondedNic::register_counters(trace::CounterRegistry& reg) const {
  for (const auto& port : ports_) port->register_counters(reg);
}

units::Bytes BondedNic::bytes_sent() const {
  units::Bytes total;
  for (const auto& port : ports_) total += port->bytes_sent();
  return total;
}

void BondedNic::set_ledger(check::PacketLedger* ledger) {
  for (auto& port : ports_) port->set_ledger(ledger);
}

void BondedNic::audit(std::vector<std::string>& problems) const {
  if (next_port_ >= ports_.size()) {
    problems.push_back("spray cursor " + std::to_string(next_port_) +
                       " beyond port count " + std::to_string(ports_.size()));
  }
  for (const auto& port : ports_) {
    const std::size_t before = problems.size();
    port->audit(problems);
    for (std::size_t i = before; i < problems.size(); ++i) {
      problems[i] = port->name() + ": " + problems[i];
    }
  }
}

std::int64_t BondedNic::total_queued_packets() const {
  std::int64_t total = 0;
  for (const auto& port : ports_) {
    total += static_cast<std::int64_t>(port->queue_packets());
  }
  return total;
}

}  // namespace greencc::net
