#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace greencc::stats {

/// Minimal streaming JSON writer (objects, arrays, scalars, escaping).
///
/// The CLI emits machine-readable results (`--json`) so experiment sweeps
/// can be driven from scripts, like `iperf3 -J`. The writer validates
/// nesting at runtime and throws on misuse.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  /// Unsigned values keep their own emission path: casting through
  /// std::int64_t would serialize counters above 2^63-1 (events executed,
  /// RAPL µJ readings) as negative numbers.
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, T v) {
    key(name);
    return value(v);
  }

  /// The completed document. Throws if containers are still open.
  std::string str() const;

  static std::string escape(const std::string& raw);

 private:
  enum class Frame { kObject, kArray };

  void before_value();

  std::ostringstream out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
  bool done_ = false;
};

}  // namespace greencc::stats
