#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace greencc::stats {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  Summary s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: length mismatch");
  }
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  // lint-allow: float-eq (exact degenerate case: constant series)
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("linear_fit: length mismatch");
  }
  const std::size_t n = xs.size();
  if (n < 2) return {mean(ys), 0.0};
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  // lint-allow: float-eq (exact degenerate case: all x identical)
  if (sxx == 0.0) return {my, 0.0};
  const double slope = sxy / sxx;
  return {my - slope * mx, slope};
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double jain_index(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double s = 0.0, s2 = 0.0;
  for (double x : xs) {
    s += x;
    s2 += x * x;
  }
  // lint-allow: float-eq (exact degenerate case: all-zero series)
  if (s2 == 0.0) return 1.0;
  return s * s / (static_cast<double>(xs.size()) * s2);
}

bool is_strictly_concave(std::span<const double> xs, std::span<const double> ys,
                         double tolerance) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("is_strictly_concave: length mismatch");
  }
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) {
    const double x0 = xs[i - 1], x1 = xs[i], x2 = xs[i + 1];
    if (!(x0 < x1 && x1 < x2)) {
      throw std::invalid_argument("is_strictly_concave: x not increasing");
    }
    const double t = (x1 - x0) / (x2 - x0);
    const double chord = ys[i - 1] + t * (ys[i + 1] - ys[i - 1]);
    if (ys[i] <= chord + tolerance) return false;
  }
  return true;
}

}  // namespace greencc::stats
