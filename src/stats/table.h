#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace greencc::stats {

/// Minimal fixed-column table printer used by every bench binary.
///
/// The paper's figures are reproduced as text tables (one bench per figure);
/// this type renders aligned columns to stdout and, optionally, a CSV file so
/// the series can be re-plotted.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render with aligned columns to `os`.
  void print(std::ostream& os) const;

  /// Write as CSV (headers + rows).
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace greencc::stats
