#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace greencc::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      // Cells are simple numbers/identifiers; quote only if a comma appears.
      if (row[c].find(',') != std::string::npos) {
        out << '"' << row[c] << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace greencc::stats
