#include "stats/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace greencc::stats {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Frame::kObject && !pending_key_) {
    throw std::logic_error("JsonWriter: value in object without key");
  }
  if (stack_.back() == Frame::kArray) {
    if (has_items_.back()) out_ << ',';
    has_items_.back() = true;
  }
  pending_key_ = false;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (pending_key_) throw std::logic_error("JsonWriter: duplicate key call");
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  out_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  out_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ << '"' << escape(v) << '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.10g", v);
    out_ << buf;
  } else {
    out_ << "null";  // JSON has no NaN/Inf
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: unclosed containers");
  }
  return out_.str();
}

}  // namespace greencc::stats
