#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace greencc::stats {

/// Streaming accumulator for mean / variance (Welford's algorithm).
///
/// Used wherever the paper reports a mean with standard deviation over 10
/// repeats of a scenario. Welford's update is numerically stable for the
/// small counts and large magnitudes (energies in joules, times in ns) we
/// feed it.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 for fewer than 2 samples.
double stddev(std::span<const double> xs);

/// Pearson correlation coefficient of paired samples.
///
/// The paper reports corr(energy, power) = -0.8 (Fig 5 vs Fig 6) and
/// corr(energy, retransmissions) = 0.47 (Fig 8). Returns 0 when either
/// sample is constant or the spans are shorter than 2.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Least-squares fit y = a + b*x. Returns {intercept, slope}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// p-th percentile (0..100) by linear interpolation on the sorted sample.
double percentile(std::vector<double> xs, double p);

/// Jain's fairness index of an allocation: (sum x)^2 / (n * sum x^2).
/// Equals 1 for a perfectly fair allocation, 1/n for a fully unfair one.
double jain_index(std::span<const double> xs);

/// Numerically check strict concavity of samples (x_i, y_i) with x sorted
/// strictly increasing: every interior point must lie above the chord of its
/// neighbours by at least `tolerance`.
bool is_strictly_concave(std::span<const double> xs, std::span<const double> ys,
                         double tolerance = 0.0);

}  // namespace greencc::stats
