#pragma once

// Typed CSV emission for pack-level sweep outputs.
//
// Table (table.h) is a string-in/string-out renderer; CsvWriter instead
// takes typed cells — units::Energy, units::Power, units::BitRate,
// units::Bytes, sim::SimTime — so the call site states the unit and the
// formatter owns the rendering. Two float renderings cover both legacy
// bench CSV dialects byte-for-byte:
//
//   general(v, p)  ostream default-format at precision p (what
//                  cca_grid_main's out.precision(12) produced)
//   fixed(v, p)    printf "%.*f" (what Table::num produced)
//
// Quoting matches Table::write_csv: cells are quoted only when they
// contain a comma.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"
#include "units/units.h"

namespace greencc::stats {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  // Cell appenders; cells fill the current row left to right.
  CsvWriter& text(const std::string& v);
  CsvWriter& integer(std::int64_t v);
  CsvWriter& general(double v, int precision);
  CsvWriter& fixed(double v, int precision);
  CsvWriter& yesno(bool v);  ///< "yes" / "NO", the bench convention

  // Typed cells: the unit decides the numeric rendering.
  CsvWriter& energy(units::Energy v, int precision);   ///< joules, general
  CsvWriter& power(units::Power v, int precision);     ///< watts, general
  CsvWriter& rate_gbps(units::BitRate v, int precision);  ///< Gb/s, fixed
  CsvWriter& size(units::Bytes v);                     ///< byte count
  CsvWriter& duration_sec(sim::SimTime v, int precision);  ///< seconds, fixed

  /// Closes the current row; throws std::invalid_argument when the cell
  /// count does not match the header count.
  CsvWriter& end_row();

  void write(std::ostream& os) const;
  void write_file(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  CsvWriter& cell(std::string v);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> current_;
};

}  // namespace greencc::stats
