#include "stats/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace greencc::stats {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

CsvWriter& CsvWriter::cell(std::string v) {
  current_.push_back(std::move(v));
  return *this;
}

CsvWriter& CsvWriter::text(const std::string& v) { return cell(v); }

CsvWriter& CsvWriter::integer(std::int64_t v) {
  return cell(std::to_string(v));
}

CsvWriter& CsvWriter::general(double v, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << v;
  return cell(out.str());
}

CsvWriter& CsvWriter::fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return cell(buf);
}

CsvWriter& CsvWriter::yesno(bool v) { return cell(v ? "yes" : "NO"); }

CsvWriter& CsvWriter::energy(units::Energy v, int precision) {
  return general(v.joules(), precision);
}

CsvWriter& CsvWriter::power(units::Power v, int precision) {
  return general(v.watts(), precision);
}

CsvWriter& CsvWriter::rate_gbps(units::BitRate v, int precision) {
  return fixed(v.gbps(), precision);
}

CsvWriter& CsvWriter::size(units::Bytes v) { return integer(v.count()); }

CsvWriter& CsvWriter::duration_sec(sim::SimTime v, int precision) {
  return fixed(v.sec(), precision);
}

CsvWriter& CsvWriter::end_row() {
  if (current_.size() != headers_.size()) {
    throw std::invalid_argument(
        "CsvWriter::end_row: " + std::to_string(current_.size()) +
        " cells for " + std::to_string(headers_.size()) + " headers");
  }
  rows_.push_back(std::move(current_));
  current_.clear();
  return *this;
}

void CsvWriter::write(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      if (row[c].find(',') != std::string::npos) {
        os << '"' << row[c] << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write(out);
}

}  // namespace greencc::stats
