#include "check/auditor.h"

#include <cmath>
#include <utility>

#include "check/check.h"

namespace greencc::check {

namespace {

std::string flow_tag(const std::string& side, net::FlowId flow) {
  return side + "(flow " + std::to_string(flow) + ")";
}

}  // namespace

void InvariantAuditor::watch_queue(std::string name,
                                   const net::DropTailQueue* queue) {
  queues_.emplace_back(std::move(name), queue);
}

void InvariantAuditor::watch_port(const net::QueuedPort* port) {
  ports_.push_back(port);
}

void InvariantAuditor::watch_drr(std::string name, const net::DrrPort* port) {
  drrs_.emplace_back(std::move(name), port);
}

void InvariantAuditor::watch_switch(std::string name, const net::Switch* sw) {
  switches_.emplace_back(std::move(name), sw);
}

void InvariantAuditor::watch_nic(std::string name, const net::BondedNic* nic) {
  nics_.emplace_back(std::move(name), nic);
}

void InvariantAuditor::watch_flow(net::FlowId flow,
                                  const tcp::TcpSender* sender,
                                  const tcp::TcpReceiver* receiver) {
  flows_.push_back(FlowWatch{flow, sender, receiver});
}

void InvariantAuditor::watch_impairment(const fault::ImpairedLink* link) {
  impairments_.push_back(link);
}

void InvariantAuditor::wrap(const std::string& component,
                            const std::string& invariant,
                            const std::vector<std::string>& problems,
                            std::vector<Violation>& out) const {
  for (const auto& problem : problems) {
    out.push_back(Violation{component, invariant, problem});
  }
}

void InvariantAuditor::audit_simulator_state(sim::SimTime now,
                                             std::size_t pending,
                                             std::size_t peak_pending,
                                             std::uint64_t events_executed,
                                             std::vector<Violation>& out) {
  if (have_sim_state_ && now < last_now_) {
    out.push_back({"simulator", "sim.time_monotonic",
                   "clock regressed from " + last_now_.to_string() + " to " +
                       now.to_string()});
  }
  if (peak_pending < pending) {
    out.push_back({"simulator", "sim.heap_high_water",
                   "peak_pending_events " + std::to_string(peak_pending) +
                       " below current pending " + std::to_string(pending)});
  }
  if (have_sim_state_ && peak_pending < last_peak_) {
    out.push_back({"simulator", "sim.heap_high_water",
                   "peak_pending_events regressed from " +
                       std::to_string(last_peak_) + " to " +
                       std::to_string(peak_pending)});
  }
  if (have_sim_state_ && events_executed < last_executed_) {
    out.push_back({"simulator", "sim.events_monotonic",
                   "events_executed regressed from " +
                       std::to_string(last_executed_) + " to " +
                       std::to_string(events_executed)});
  }
  have_sim_state_ = true;
  last_now_ = std::max(last_now_, now);
  last_peak_ = std::max(last_peak_, peak_pending);
  last_executed_ = std::max(last_executed_, events_executed);
}

void InvariantAuditor::audit_flow_progress(net::FlowId flow,
                                           std::int64_t snd_una,
                                           std::int64_t rcv_nxt,
                                           std::vector<Violation>& out) {
  auto [it, inserted] = progress_.try_emplace(flow);
  FlowProgress& prev = it->second;
  if (!inserted && snd_una < prev.snd_una) {
    out.push_back({flow_tag("tcp:sender", flow), "tcp.cumack_monotonic",
                   "snd_una regressed from " + std::to_string(prev.snd_una) +
                       " to " + std::to_string(snd_una)});
  }
  if (!inserted && rcv_nxt < prev.rcv_nxt) {
    out.push_back({flow_tag("tcp:receiver", flow), "tcp.rcvnxt_monotonic",
                   "rcv_nxt regressed from " + std::to_string(prev.rcv_nxt) +
                       " to " + std::to_string(rcv_nxt)});
  }
  // The sender can only have learned of data the receiver already holds:
  // an ACK in flight carries an older (smaller) rcv_nxt, never a newer one.
  if (snd_una > rcv_nxt) {
    out.push_back({flow_tag("tcp", flow), "tcp.cumack_bound",
                   "snd_una " + std::to_string(snd_una) +
                       " ahead of receiver rcv_nxt " +
                       std::to_string(rcv_nxt)});
  }
  prev.snd_una = std::max(prev.snd_una, snd_una);
  prev.rcv_nxt = std::max(prev.rcv_nxt, rcv_nxt);
}

void InvariantAuditor::audit_flow_conservation(
    net::FlowId flow, std::int64_t data_sent, std::int64_t data_injected,
    std::int64_t data_delivered, std::int64_t data_dropped,
    std::int64_t data_fault_dropped, std::int64_t acks_sent,
    std::int64_t acks_injected, std::int64_t acks_received,
    std::int64_t acks_dropped, std::int64_t acks_fault_dropped,
    std::vector<Violation>& out) {
  const std::int64_t data_in_flight = data_sent + data_injected -
                                      data_delivered - data_dropped -
                                      data_fault_dropped;
  if (data_in_flight < 0) {
    out.push_back(
        {flow_tag("flow", flow), "conservation.data",
         "sent " + std::to_string(data_sent) + " + injected " +
             std::to_string(data_injected) + " < delivered " +
             std::to_string(data_delivered) + " + dropped " +
             std::to_string(data_dropped) + " + fault-dropped " +
             std::to_string(data_fault_dropped) +
             " (implied in-flight " + std::to_string(data_in_flight) + ")"});
  }
  const std::int64_t acks_in_flight = acks_sent + acks_injected -
                                      acks_received - acks_dropped -
                                      acks_fault_dropped;
  if (acks_in_flight < 0) {
    out.push_back(
        {flow_tag("flow", flow), "conservation.ack",
         "acks sent " + std::to_string(acks_sent) + " + injected " +
             std::to_string(acks_injected) + " < received " +
             std::to_string(acks_received) + " + dropped " +
             std::to_string(acks_dropped) + " + fault-dropped " +
             std::to_string(acks_fault_dropped) +
             " (implied in-flight " + std::to_string(acks_in_flight) + ")"});
  }
}

void InvariantAuditor::audit_cca(net::FlowId flow,
                                 const cca::CongestionControl& cc,
                                 std::vector<Violation>& out) const {
  const std::string component = flow_tag("cca:" + cc.name(), flow);
  const double cwnd = cc.cwnd_segments();
  if (!std::isfinite(cwnd)) {
    out.push_back({component, "cca.cwnd_sane", "cwnd is not finite"});
  } else if (cwnd < 1.0 - 1e-9) {
    out.push_back({component, "cca.cwnd_sane",
                   "cwnd " + std::to_string(cwnd) +
                       " below the contract minimum of 1 segment"});
  } else if (cwnd > 1e9) {
    out.push_back({component, "cca.cwnd_sane",
                   "cwnd " + std::to_string(cwnd) +
                       " absurdly large (> 1e9 segments)"});
  }
  const double pacing = cc.pacing_rate().bps();
  if (!std::isfinite(pacing) || pacing < 0.0) {
    out.push_back({component, "cca.pacing_sane",
                   "pacing rate " + std::to_string(pacing) +
                       " negative or not finite"});
  } else if (pacing > 1e15) {
    out.push_back({component, "cca.pacing_sane",
                   "pacing rate " + std::to_string(pacing) +
                       " absurdly large (> 1 Pb/s)"});
  }
}

std::int64_t InvariantAuditor::total_queued_packets() const {
  std::int64_t total = 0;
  for (const auto& [name, queue] : queues_) {
    total += static_cast<std::int64_t>(queue->packets());
  }
  for (const auto* port : ports_) {
    total += static_cast<std::int64_t>(port->queue_packets());
  }
  for (const auto& [name, drr] : drrs_) total += drr->total_queued_packets();
  for (const auto& [name, sw] : switches_) total += sw->total_queued_packets();
  for (const auto& [name, nic] : nics_) total += nic->total_queued_packets();
  return total;
}

std::vector<Violation> InvariantAuditor::run_once() {
  std::vector<Violation> out;
  std::vector<std::string> problems;

  if (sim_) {
    audit_simulator_state(sim_->now(), sim_->pending_events(),
                          sim_->peak_pending_events(),
                          sim_->events_executed(), out);
  }
  for (const auto& [name, queue] : queues_) {
    problems.clear();
    queue->audit(problems);
    wrap(name, "queue.accounting", problems, out);
  }
  for (const auto* port : ports_) {
    problems.clear();
    port->audit(problems);
    wrap(port->name(), "port.accounting", problems, out);
  }
  for (const auto& [name, drr] : drrs_) {
    problems.clear();
    drr->audit(problems);
    wrap(name, "drr.scheduler", problems, out);
  }
  for (const auto& [name, sw] : switches_) {
    problems.clear();
    sw->audit(problems);
    wrap(name, "switch.accounting", problems, out);
  }
  for (const auto& [name, nic] : nics_) {
    problems.clear();
    nic->audit(problems);
    wrap(name, "nic.accounting", problems, out);
  }
  for (const auto* link : impairments_) {
    problems.clear();
    link->audit(problems);
    wrap(link->name(), "fault.accounting", problems, out);
  }

  std::int64_t implied_in_flight = 0;
  for (const auto& fw : flows_) {
    problems.clear();
    fw.sender->audit(problems);
    wrap(flow_tag("tcp:sender", fw.flow), "tcp.scoreboard", problems, out);
    problems.clear();
    fw.receiver->audit(problems);
    wrap(flow_tag("tcp:receiver", fw.flow), "tcp.reassembly", problems, out);

    audit_cca(fw.flow, fw.sender->congestion_control(), out);
    audit_flow_progress(fw.flow, fw.sender->snd_una(), fw.receiver->rcv_nxt(),
                        out);

    const std::int64_t data_sent = fw.sender->stats().segments_sent;
    const std::int64_t data_injected = ledger_.data_injected(fw.flow);
    const std::int64_t data_delivered = fw.receiver->segments_received();
    const std::int64_t data_dropped = ledger_.data_drops(fw.flow);
    const std::int64_t data_faulted = ledger_.data_fault_drops(fw.flow);
    const std::int64_t acks_sent = fw.receiver->acks_sent();
    const std::int64_t acks_injected = ledger_.ack_injected(fw.flow);
    const std::int64_t acks_received = fw.sender->stats().acks_received;
    const std::int64_t acks_dropped = ledger_.ack_drops(fw.flow);
    const std::int64_t acks_faulted = ledger_.ack_fault_drops(fw.flow);
    audit_flow_conservation(fw.flow, data_sent, data_injected, data_delivered,
                            data_dropped, data_faulted, acks_sent,
                            acks_injected, acks_received, acks_dropped,
                            acks_faulted, out);
    implied_in_flight +=
        std::max<std::int64_t>(0, data_sent + data_injected - data_delivered -
                                      data_dropped - data_faulted) +
        std::max<std::int64_t>(0, acks_sent + acks_injected - acks_received -
                                      acks_dropped - acks_faulted);
  }

  // Topology-wide bound: every in-flight packet sits in exactly one queue
  // or is referenced by exactly one pending simulator event (release,
  // serialization or propagation). Pending events over-count (timers,
  // meters, this audit), so the bound is loose — but a leak that fabricates
  // packets blows straight through it.
  if (complete_topology_ && sim_) {
    const std::int64_t capacity =
        total_queued_packets() +
        static_cast<std::int64_t>(sim_->pending_events());
    if (implied_in_flight > capacity) {
      out.push_back(
          {"topology", "conservation.global",
           "implied in-flight " + std::to_string(implied_in_flight) +
               " exceeds queue occupancy + pending events " +
               std::to_string(capacity)});
    }
  }

  ++audits_run_;
  return out;
}

void InvariantAuditor::check_now() {
  last_violations_ = run_once();
  if (last_violations_.empty()) return;

  const sim::SimTime now = sim_ ? sim_->now() : last_now_;
  if (trace_) {
    for (std::size_t i = 0; i < last_violations_.size(); ++i) {
      const Violation& v = last_violations_[i];
      trace::Event event;
      event.t = now;
      event.cls = trace::EventClass::kInvariant;
      event.src = v.component;
      event.seq = -1;
      event.value = static_cast<double>(i);
      event.detail = v.message;
      trace_->emit(event);
    }
  }
  GREENCC_CHECK(last_violations_.empty())
      << last_violations_.size() << " invariant violation(s) at t="
      << now.to_string() << "; first: " << last_violations_.front().to_string()
      << " (audit #" << audits_run_ << ")";
}

void InvariantAuditor::arm(sim::Simulator& sim) {
  armed_ = true;
  schedule_next(sim);
}

void InvariantAuditor::schedule_next(sim::Simulator& sim) {
  sim.schedule(config_.cadence, [this, &sim] {
    if (!armed_) return;
    check_now();
    schedule_next(sim);
  });
}

}  // namespace greencc::check
