#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cca/cca.h"
#include "check/ledger.h"
#include "fault/impairment.h"
#include "net/drr.h"
#include "net/port.h"
#include "net/switch.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "trace/trace.h"

namespace greencc::check {

/// One broken invariant, as reported by a component walk.
struct Violation {
  std::string component;  ///< emitting component ("switch:egress0", ...)
  std::string invariant;  ///< invariant class ("queue.accounting", ...)
  std::string message;    ///< human-readable detail

  std::string to_string() const {
    return component + " [" + invariant + "] " + message;
  }
};

/// Walks the live topology and verifies the accounting invariants the
/// paper's energy numbers rest on: a simulator that loses or double-counts
/// packets produces wrong retransmission counts, wrong FCTs and therefore
/// wrong joules — silently.
///
/// The auditor holds non-owning pointers to the components it watches (the
/// scenario registers everything it builds) and re-derives each layer's
/// books from first principles at every audit:
///
///   * simulator  — event time never regresses, heap high-water marks and
///     executed-event counts are monotone and mutually consistent
///   * queues     — byte/packet occupancy equals the sum over entries, and
///     enqueued == dequeued + head-dropped + still-queued (both units)
///   * ports      — transmit counters equal the queue's dequeue counters;
///     a backlogged port is never idle between events
///   * DRR        — active-list membership matches queue backlogs, deficits
///     never go negative, per-flow queues audit like any queue
///   * TCP        — scoreboard flag counts equal the cached aggregates
///     (pipe/sacked_out/lost_out), index sets agree with the scoreboard,
///     SACK ranges are disjoint and ordered, cumulative ACK and rcv_nxt
///     never regress, in-flight respects the cwnd high-water bound
///   * CCA        — cwnd and pacing rate are finite, positive and sane
///   * end-to-end — per flow, sent == delivered + dropped + in_flight with
///     in_flight >= 0; topology-wide, implied in-flight never exceeds what
///     queues and pending events can physically hold
///
/// Violations are emitted as `invariant` trace events through the run's
/// TraceSink (so a failing grid cell is diagnosable from its trace file)
/// and then raised through GREENCC_CHECK, which aborts — or throws, under a
/// test-installed failure handler.
///
/// Lifetime: the auditor must outlive both the watched components and any
/// events it scheduled (arm()); the owning scenario satisfies both by
/// construction. Not thread-safe; one auditor per (single-threaded)
/// simulator, which keeps parallel repeats race-free the same way sinks
/// are.
class InvariantAuditor {
 public:
  struct Config {
    /// Simulated-time interval between topology walks (arm()).
    sim::SimTime cadence = sim::SimTime::milliseconds(10);
  };

  InvariantAuditor() = default;
  explicit InvariantAuditor(Config config) : config_(config) {}
  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  // --- registration (all pointers non-owning, must outlive the auditor) ---
  void watch_simulator(const sim::Simulator* sim) { sim_ = sim; }
  void watch_queue(std::string name, const net::DropTailQueue* queue);
  void watch_port(const net::QueuedPort* port);
  void watch_drr(std::string name, const net::DrrPort* port);
  void watch_switch(std::string name, const net::Switch* sw);
  void watch_nic(std::string name, const net::BondedNic* nic);
  void watch_flow(net::FlowId flow, const tcp::TcpSender* sender,
                  const tcp::TcpReceiver* receiver);
  void watch_impairment(const fault::ImpairedLink* link);

  /// The run's drop ledger; wire into every queue (set_ledger) before
  /// traffic flows so the conservation equation balances.
  PacketLedger& ledger() { return ledger_; }

  /// Declare that every queue of the topology reports to the ledger. Only
  /// then is the topology-wide in-flight upper bound checked (a partially
  /// wired topology under-counts drops, which would false-fire it).
  void set_complete_topology(bool complete) { complete_topology_ = complete; }

  /// Violations are additionally emitted as `invariant` events here.
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

  /// Walk everything once; returns the violations found (empty = healthy).
  /// Also advances the monotonicity high-water marks.
  std::vector<Violation> run_once();

  /// run_once(), then report-and-abort on any violation: each violation is
  /// emitted through the trace sink, then GREENCC_CHECK(false) raises a
  /// summary through the failure handler.
  void check_now();

  /// Schedule check_now() every `cadence` on `sim` until disarm(). The
  /// recurring event keeps the queue non-empty: drive an armed simulator
  /// with run_until(deadline), not run().
  void arm(sim::Simulator& sim);
  void disarm() { armed_ = false; }

  std::uint64_t audits_run() const { return audits_run_; }

  // --- raw-state seams -----------------------------------------------
  // run_once() feeds these with live values; unit tests feed them with
  // deliberately corrupted ones to prove each invariant class fires.

  /// Event-time monotonicity and heap high-water sanity.
  void audit_simulator_state(sim::SimTime now, std::size_t pending,
                             std::size_t peak_pending,
                             std::uint64_t events_executed,
                             std::vector<Violation>& out);

  /// Cumulative-ACK / rcv_nxt forward progress for one flow.
  void audit_flow_progress(net::FlowId flow, std::int64_t snd_una,
                           std::int64_t rcv_nxt,
                           std::vector<Violation>& out);

  /// Per-flow conservation:
  ///   sent + injected == delivered + dropped + fault_dropped + in_flight.
  /// `injected` credits packets fabricated by fault duplication (arrivals
  /// with no matching transmission) and `fault_dropped` debits packets the
  /// impairment layer removed non-congestively (loss, corruption,
  /// link-down); both are zero for unimpaired runs, collapsing the equation
  /// to the classic sent == delivered + dropped + in_flight.
  void audit_flow_conservation(net::FlowId flow, std::int64_t data_sent,
                               std::int64_t data_injected,
                               std::int64_t data_delivered,
                               std::int64_t data_dropped,
                               std::int64_t data_fault_dropped,
                               std::int64_t acks_sent,
                               std::int64_t acks_injected,
                               std::int64_t acks_received,
                               std::int64_t acks_dropped,
                               std::int64_t acks_fault_dropped,
                               std::vector<Violation>& out);

  /// CCA sanity over a controller's current outputs.
  void audit_cca(net::FlowId flow, const cca::CongestionControl& cc,
                 std::vector<Violation>& out) const;

 private:
  struct FlowWatch {
    net::FlowId flow = 0;
    const tcp::TcpSender* sender = nullptr;
    const tcp::TcpReceiver* receiver = nullptr;
  };
  struct FlowProgress {
    std::int64_t snd_una = 0;
    std::int64_t rcv_nxt = 0;
  };

  void wrap(const std::string& component, const std::string& invariant,
            const std::vector<std::string>& problems,
            std::vector<Violation>& out) const;
  std::int64_t total_queued_packets() const;
  void schedule_next(sim::Simulator& sim);

  Config config_;
  const sim::Simulator* sim_ = nullptr;
  std::vector<std::pair<std::string, const net::DropTailQueue*>> queues_;
  std::vector<const net::QueuedPort*> ports_;
  std::vector<std::pair<std::string, const net::DrrPort*>> drrs_;
  std::vector<std::pair<std::string, const net::Switch*>> switches_;
  std::vector<std::pair<std::string, const net::BondedNic*>> nics_;
  std::vector<const fault::ImpairedLink*> impairments_;
  std::vector<FlowWatch> flows_;
  PacketLedger ledger_;
  bool complete_topology_ = false;
  trace::TraceSink* trace_ = nullptr;
  bool armed_ = false;
  std::uint64_t audits_run_ = 0;

  // Monotonicity high-water marks.
  bool have_sim_state_ = false;
  sim::SimTime last_now_ = sim::SimTime::zero();
  std::size_t last_peak_ = 0;
  std::uint64_t last_executed_ = 0;
  std::map<net::FlowId, FlowProgress> progress_;

  // Kept alive so trace events' string_views stay valid for sink readers.
  std::vector<Violation> last_violations_;
};

}  // namespace greencc::check
