#pragma once

#include <cstdint>
#include <map>

#include "net/packet.h"

namespace greencc::check {

/// Per-flow packet-loss ledger, the drop side of the end-to-end
/// conservation invariant
///
///     sent + injected == delivered + dropped + fault_dropped + in_flight
///
/// (per flow). Senders already count transmissions and receivers arrivals,
/// but drops happen inside queues that know the packet's flow only at the
/// drop site. In audit mode every DropTailQueue gets a pointer to the run's
/// ledger and reports each dropped packet here; the InvariantAuditor then
/// solves the equation for in_flight and checks it stays within physical
/// bounds.
///
/// The fault-injection subsystem (src/fault/) extends the books with two
/// more columns: `fault_drops` for packets it removed non-congestively
/// (i.i.d./burst loss, corruption surfacing as a receiver checksum drop,
/// link-down discards) and `injected` for packets it fabricated
/// (duplication) that arrive at a receiver without a matching sender
/// transmission. Both are distinct accounts — congestive and injected loss
/// must never be conflated, or an impaired run could hide a real leak.
///
/// Header-only on purpose: queues call it from their drop sites, and the
/// net layer must not link against the audit library (which itself links
/// net). The hot path pays one branch-on-nullptr per drop — and drops are
/// already the slow path.
class PacketLedger {
 public:
  void on_drop(const net::Packet& pkt) {
    // A corrupted packet was accounted as a fault drop at the moment the
    // impairment stage damaged it (its eventual checksum discard being
    // deterministic); if congestion happens to drop it first, counting it
    // again would double-book the loss.
    if (pkt.corrupted) return;
    if (pkt.is_ack) {
      ++ack_drops_[pkt.flow];
    } else {
      ++data_drops_[pkt.flow];
    }
  }

  /// An injected fault removed this packet from the network (loss,
  /// corruption, link-down). Reported by fault::ImpairedLink, never by
  /// queues.
  void on_fault_drop(const net::Packet& pkt) {
    if (pkt.is_ack) {
      ++ack_fault_drops_[pkt.flow];
    } else {
      ++data_fault_drops_[pkt.flow];
    }
  }

  /// An injected fault fabricated this packet (duplication): one extra
  /// arrival with no matching transmission, credited to the sent side.
  void on_fault_inject(const net::Packet& pkt) {
    if (pkt.is_ack) {
      ++ack_injected_[pkt.flow];
    } else {
      ++data_injected_[pkt.flow];
    }
  }

  std::int64_t data_drops(net::FlowId flow) const {
    return lookup(data_drops_, flow);
  }
  std::int64_t ack_drops(net::FlowId flow) const {
    return lookup(ack_drops_, flow);
  }
  std::int64_t data_fault_drops(net::FlowId flow) const {
    return lookup(data_fault_drops_, flow);
  }
  std::int64_t ack_fault_drops(net::FlowId flow) const {
    return lookup(ack_fault_drops_, flow);
  }
  std::int64_t data_injected(net::FlowId flow) const {
    return lookup(data_injected_, flow);
  }
  std::int64_t ack_injected(net::FlowId flow) const {
    return lookup(ack_injected_, flow);
  }

 private:
  using Account = std::map<net::FlowId, std::int64_t>;

  static std::int64_t lookup(const Account& account, net::FlowId flow) {
    auto it = account.find(flow);
    return it == account.end() ? 0 : it->second;
  }

  // std::map: deterministic iteration if anyone ever walks these.
  Account data_drops_;
  Account ack_drops_;
  Account data_fault_drops_;
  Account ack_fault_drops_;
  Account data_injected_;
  Account ack_injected_;
};

}  // namespace greencc::check
