#pragma once

#include <cstdint>
#include <map>

#include "net/packet.h"

namespace greencc::check {

/// Per-flow packet-loss ledger, the drop side of the end-to-end
/// conservation invariant
///
///     sent == delivered + dropped + in_flight        (per flow)
///
/// Senders already count transmissions and receivers arrivals, but drops
/// happen inside queues that know the packet's flow only at the drop site.
/// In audit mode every DropTailQueue gets a pointer to the run's ledger and
/// reports each dropped packet here; the InvariantAuditor then solves the
/// equation for in_flight and checks it stays within physical bounds.
///
/// Header-only on purpose: queues call it from their drop sites, and the
/// net layer must not link against the audit library (which itself links
/// net). The hot path pays one branch-on-nullptr per drop — and drops are
/// already the slow path.
class PacketLedger {
 public:
  void on_drop(const net::Packet& pkt) {
    if (pkt.is_ack) {
      ++ack_drops_[pkt.flow];
    } else {
      ++data_drops_[pkt.flow];
    }
  }

  std::int64_t data_drops(net::FlowId flow) const {
    auto it = data_drops_.find(flow);
    return it == data_drops_.end() ? 0 : it->second;
  }

  std::int64_t ack_drops(net::FlowId flow) const {
    auto it = ack_drops_.find(flow);
    return it == ack_drops_.end() ? 0 : it->second;
  }

 private:
  // std::map: deterministic iteration if anyone ever walks these.
  std::map<net::FlowId, std::int64_t> data_drops_;
  std::map<net::FlowId, std::int64_t> ack_drops_;
};

}  // namespace greencc::check
