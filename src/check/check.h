#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// GREENCC_CHECK / GREENCC_DCHECK — the project's runtime invariant macros.
///
/// Both are message-streaming (glog-style):
///
///   GREENCC_CHECK(bytes_ >= 0) << "queue " << name_ << " bytes went "
///                              << bytes_;
///
/// GREENCC_CHECK is evaluated in every build flavor: it costs one
/// well-predicted branch when the condition holds and the stream operands
/// are never evaluated on the healthy path. Unlike a bare assert() it
/// survives RelWithDebInfo (NDEBUG) builds, so the few always-on machine
/// invariants (event-time monotonicity, scheduler progress) keep guarding
/// release experiment runs.
///
/// GREENCC_DCHECK compiles to nothing unless the tree is configured with
/// -DGREENCC_AUDIT=ON (the `audit` CMake preset), which defines
/// GREENCC_AUDIT. Use it for per-packet/per-ACK checks that are too hot to
/// pay for in measurement builds. The condition and stream operands still
/// typecheck when compiled out (they sit behind a constant-folded branch),
/// so an audit build can never be broken by a stale check.
///
/// Failure behavior: the failure message — file:line, the condition text
/// and the streamed context — goes through the installed FailureHandler.
/// The default handler prints to stderr and aborts. Tests install a
/// throwing handler (see ScopedFailureHandler) to prove invariants actually
/// fire on corrupted state.
namespace greencc::check {

/// Everything known about one failed check.
struct FailureInfo {
  const char* file = "";
  int line = 0;
  const char* condition = "";
  std::string message;

  std::string to_string() const {
    std::string out = std::string(file) + ":" + std::to_string(line) +
                      ": check failed: " + condition;
    if (!message.empty()) out += " — " + message;
    return out;
  }
};

/// A handler may throw (tests) or return (then the process aborts).
using FailureHandler = void (*)(const FailureInfo&);

namespace detail {
inline FailureHandler& handler_slot() {
  static FailureHandler handler = nullptr;  // nullptr = print + abort
  return handler;
}
}  // namespace detail

/// Install a failure handler; returns the previous one. Not thread-safe:
/// install before spawning workers (tests are single-threaded at setup).
inline FailureHandler set_failure_handler(FailureHandler handler) {
  FailureHandler old = detail::handler_slot();
  detail::handler_slot() = handler;
  return old;
}

/// Route a failure through the installed handler; abort if it returns.
[[noreturn]] inline void fail(const FailureInfo& info) {
  if (FailureHandler handler = detail::handler_slot()) handler(info);
  std::fprintf(stderr, "GREENCC_CHECK %s\n", info.to_string().c_str());
  std::abort();
}

/// RAII helper for tests: installs a handler for the enclosing scope.
class ScopedFailureHandler {
 public:
  explicit ScopedFailureHandler(FailureHandler handler)
      : previous_(set_failure_handler(handler)) {}
  ~ScopedFailureHandler() { set_failure_handler(previous_); }
  ScopedFailureHandler(const ScopedFailureHandler&) = delete;
  ScopedFailureHandler& operator=(const ScopedFailureHandler&) = delete;

 private:
  FailureHandler previous_;
};

/// Exception a test handler can throw to observe the failure.
struct CheckFailedError {
  FailureInfo info;
};

/// Handler that throws CheckFailedError (for EXPECT_THROW-style tests).
[[noreturn]] inline void throwing_failure_handler(const FailureInfo& info) {
  throw CheckFailedError{info};
}

/// Collects the streamed message; its destructor fires the failure at the
/// end of the full expression, after all operands have been streamed.
class Failer {
 public:
  Failer(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}
  Failer(const Failer&) = delete;
  Failer& operator=(const Failer&) = delete;

  // noexcept(false): a test-installed handler reports by throwing.
  ~Failer() noexcept(false) {
    fail(FailureInfo{file_, line_, condition_, stream_.str()});
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

/// Makes the streaming arm of the ternary void-typed. operator& binds
/// looser than operator<<, so the whole `Failer().stream() << a << b`
/// chain is evaluated first — and only when the condition is false.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace greencc::check

#define GREENCC_CHECK(condition)                                   \
  (condition) ? (void)0                                            \
              : ::greencc::check::Voidify() &                      \
                    ::greencc::check::Failer(__FILE__, __LINE__,   \
                                             #condition)           \
                        .stream()

#ifdef GREENCC_AUDIT
#define GREENCC_DCHECK(condition) GREENCC_CHECK(condition)
#else
// Compiled out, but the condition and streamed operands still typecheck:
// `true || (condition)` folds to true, the streaming arm is dead code.
#define GREENCC_DCHECK(condition)                                  \
  (true || (condition)) ? (void)0                                  \
                        : ::greencc::check::Voidify() &            \
                              ::greencc::check::Failer(            \
                                  __FILE__, __LINE__, #condition)  \
                                  .stream()
#endif
