#pragma once

#include <compare>
#include <cstdint>
#include <type_traits>

#include "sim/time.h"

namespace greencc::units {

/// Strongly-typed quantities for the dimensions the paper's claims live on:
/// data (bytes vs bits), data rate, energy, power, packet rate, and the
/// derived ratio joules-per-byte. The design follows `sim::SimTime`: one
/// trivially-copyable class per dimension wrapping a single representation,
/// explicit named construction, accessors that name the unit, and operator
/// overloads restricted to the physically meaningful algebra. Anything not
/// defined here — `Bytes + Bits`, `Power` where `Energy` is due, implicit
/// narrowing from `double` — fails to compile (see tests/compile_fail/).
///
/// Representation choices are part of the contract, because the simulator's
/// outputs must stay bit-identical across refactors:
///  - `Bytes` / `Bits` wrap a signed 64-bit count. Integer counters never
///    round, and 64 bits do not hit the 2^53 precision cliff that a
///    `double` accumulator silently falls off at fleet scale.
///  - `BitRate` wraps a `double` in bits/second, the unit every dynamics
///    path (pacing, serialization, RED/ECN math) already computes in, so
///    `BitRate::bps(x).bps() == x` exactly — wrapping a value and reading
///    it back perturbs nothing. Constructing *from another unit*
///    (`BitRate::gbps`) multiplies by a power of ten and may round by one
///    ulp; do that only at configuration boundaries, never mid-trajectory.
///  - `Energy` (joules), `Power` (watts), `PacketRate` (packets/s) and
///    `JoulesPerByte` wrap a `double` in the named SI unit.
///
/// Conversion policy for existing code: wrap the established arithmetic at
/// the boundary (`BitRate::bps(computed)`), never re-derive a value through
/// a different unit — `(x * 1e9) / 1e9 != x` in general for IEEE doubles.

// ---------------------------------------------------------------------------
// Named conversion constants (replaces magic 8.0 / 1e9 literals).
// ---------------------------------------------------------------------------

inline constexpr std::int64_t kBitsPerByte = 8;
inline constexpr double kBitsPerByteF = 8.0;
inline constexpr double kBitsPerGigabit = 1e9;
inline constexpr double kBytesPerGigabyte = 1e9;
inline constexpr double kNanosPerSecond = 1e9;

class Bits;

/// A count of bytes (payload sizes, queue depths, transmit counters).
class Bytes {
 public:
  constexpr Bytes() = default;
  /// Construction is explicit and integral: `Bytes{1500}` compiles,
  /// `Bytes b = 1500` and `Bytes{1500.5}` do not.
  explicit constexpr Bytes(std::int64_t count) : count_(count) {}

  static constexpr Bytes zero() { return Bytes{0}; }

  constexpr std::int64_t count() const { return count_; }
  /// The exact bit count (`count * 8`); defined after Bits.
  constexpr Bits bits() const;

  friend constexpr auto operator<=>(Bytes, Bytes) = default;

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.count_ + b.count_};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.count_ - b.count_};
  }
  constexpr Bytes& operator+=(Bytes o) {
    count_ += o.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    count_ -= o.count_;
    return *this;
  }
  friend constexpr Bytes operator*(Bytes a, std::int64_t k) {
    return Bytes{a.count_ * k};
  }
  friend constexpr Bytes operator*(std::int64_t k, Bytes a) { return a * k; }
  /// Integer division (buffer splits, per-flow shares); truncates like the
  /// raw int64 arithmetic it replaces.
  friend constexpr Bytes operator/(Bytes a, std::int64_t k) {
    return Bytes{a.count_ / k};
  }

 private:
  std::int64_t count_ = 0;
};

/// A count of bits. A distinct type from Bytes on purpose: the paper's
/// rate math is in bits, packet accounting is in bytes, and confusing the
/// two is the canonical factor-of-8 bug. Convert explicitly via
/// `Bytes::bits()` or `Bits::whole_bytes()`.
class Bits {
 public:
  constexpr Bits() = default;
  explicit constexpr Bits(std::int64_t count) : count_(count) {}

  static constexpr Bits zero() { return Bits{0}; }

  constexpr std::int64_t count() const { return count_; }
  /// Truncating conversion; only exact multiples of 8 round-trip.
  constexpr Bytes whole_bytes() const { return Bytes{count_ / kBitsPerByte}; }

  friend constexpr auto operator<=>(Bits, Bits) = default;

  friend constexpr Bits operator+(Bits a, Bits b) {
    return Bits{a.count_ + b.count_};
  }
  friend constexpr Bits operator-(Bits a, Bits b) {
    return Bits{a.count_ - b.count_};
  }
  constexpr Bits& operator+=(Bits o) {
    count_ += o.count_;
    return *this;
  }
  constexpr Bits& operator-=(Bits o) {
    count_ -= o.count_;
    return *this;
  }
  friend constexpr Bits operator*(Bits a, std::int64_t k) {
    return Bits{a.count_ * k};
  }
  friend constexpr Bits operator*(std::int64_t k, Bits a) { return a * k; }

 private:
  std::int64_t count_ = 0;
};

constexpr Bits Bytes::bits() const { return Bits{count_ * kBitsPerByte}; }

/// A data rate in bits per second. The representation *is* bits/second
/// (`BitRate::bps(x).bps() == x` exactly); `gbps()`/`mbps()` accessors and
/// factories scale by a decimal constant and are for configuration and
/// reporting surfaces, not for round-tripping mid-simulation values.
class BitRate {
 public:
  constexpr BitRate() = default;

  static constexpr BitRate bps(double v) { return BitRate{v}; }
  static constexpr BitRate kbps(double v) { return BitRate{v * 1e3}; }
  static constexpr BitRate mbps(double v) { return BitRate{v * 1e6}; }
  static constexpr BitRate gbps(double v) { return BitRate{v * 1e9}; }
  static constexpr BitRate zero() { return BitRate{0.0}; }

  constexpr double bps() const { return bps_; }
  constexpr double kbps() const { return bps_ / 1e3; }
  constexpr double mbps() const { return bps_ / 1e6; }
  constexpr double gbps() const { return bps_ / 1e9; }
  // Exact sentinel test: zero means "unlimited", never a computed value.
  constexpr bool is_zero() const { return bps_ == 0.0; }  // lint-allow: float-eq (zero is a sentinel, not a computed value)

  friend constexpr auto operator<=>(BitRate, BitRate) = default;

  friend constexpr BitRate operator+(BitRate a, BitRate b) {
    return BitRate{a.bps_ + b.bps_};
  }
  friend constexpr BitRate operator-(BitRate a, BitRate b) {
    return BitRate{a.bps_ - b.bps_};
  }
  /// Dimensionless scaling (AIMD factors, utilization targets).
  friend constexpr BitRate operator*(BitRate a, double f) {
    return BitRate{a.bps_ * f};
  }
  friend constexpr BitRate operator*(double f, BitRate a) { return a * f; }
  friend constexpr BitRate operator/(BitRate a, double f) {
    return BitRate{a.bps_ / f};
  }
  /// Ratio of two rates (e.g. utilization = rate / line_rate).
  friend constexpr double operator/(BitRate a, BitRate b) {
    return a.bps_ / b.bps_;
  }

 private:
  explicit constexpr BitRate(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

/// A packet rate in packets per second (the per-packet CPU cost axis of the
/// host power model). A distinct type from BitRate so the two same-shaped
/// model inputs cannot be swapped silently.
class PacketRate {
 public:
  constexpr PacketRate() = default;

  static constexpr PacketRate pps(double v) { return PacketRate{v}; }
  static constexpr PacketRate zero() { return PacketRate{0.0}; }

  constexpr double pps() const { return pps_; }

  friend constexpr auto operator<=>(PacketRate, PacketRate) = default;

  friend constexpr PacketRate operator+(PacketRate a, PacketRate b) {
    return PacketRate{a.pps_ + b.pps_};
  }
  friend constexpr PacketRate operator-(PacketRate a, PacketRate b) {
    return PacketRate{a.pps_ - b.pps_};
  }
  friend constexpr PacketRate operator*(PacketRate a, double f) {
    return PacketRate{a.pps_ * f};
  }
  friend constexpr PacketRate operator*(double f, PacketRate a) {
    return a * f;
  }
  friend constexpr double operator/(PacketRate a, PacketRate b) {
    return a.pps_ / b.pps_;
  }

 private:
  explicit constexpr PacketRate(double pps) : pps_(pps) {}
  double pps_ = 0.0;
};

/// An amount of energy in joules — the paper's bottom line.
class Energy {
 public:
  constexpr Energy() = default;

  static constexpr Energy joules(double v) { return Energy{v}; }
  static constexpr Energy millijoules(double v) { return Energy{v * 1e-3}; }
  static constexpr Energy microjoules(double v) { return Energy{v * 1e-6}; }
  static constexpr Energy zero() { return Energy{0.0}; }

  constexpr double joules() const { return joules_; }
  constexpr double millijoules() const { return joules_ * 1e3; }
  constexpr double microjoules() const { return joules_ * 1e6; }

  friend constexpr auto operator<=>(Energy, Energy) = default;

  friend constexpr Energy operator+(Energy a, Energy b) {
    return Energy{a.joules_ + b.joules_};
  }
  friend constexpr Energy operator-(Energy a, Energy b) {
    return Energy{a.joules_ - b.joules_};
  }
  constexpr Energy& operator+=(Energy o) {
    joules_ += o.joules_;
    return *this;
  }
  constexpr Energy& operator-=(Energy o) {
    joules_ -= o.joules_;
    return *this;
  }
  friend constexpr Energy operator*(Energy a, double f) {
    return Energy{a.joules_ * f};
  }
  friend constexpr Energy operator*(double f, Energy a) { return a * f; }
  friend constexpr Energy operator/(Energy a, double f) {
    return Energy{a.joules_ / f};
  }
  friend constexpr double operator/(Energy a, Energy b) {
    return a.joules_ / b.joules_;
  }

 private:
  explicit constexpr Energy(double joules) : joules_(joules) {}
  double joules_ = 0.0;
};

/// Power in watts. `Power * SimTime` integrates to Energy; `Energy /
/// SimTime` recovers average Power. Both use `SimTime::sec()` so converted
/// call sites reproduce the pre-existing `watts * interval.sec()`
/// arithmetic bit-for-bit.
class Power {
 public:
  constexpr Power() = default;

  static constexpr Power watts(double v) { return Power{v}; }
  static constexpr Power milliwatts(double v) { return Power{v * 1e-3}; }
  static constexpr Power zero() { return Power{0.0}; }

  constexpr double watts() const { return watts_; }
  constexpr double milliwatts() const { return watts_ * 1e3; }

  friend constexpr auto operator<=>(Power, Power) = default;

  friend constexpr Power operator+(Power a, Power b) {
    return Power{a.watts_ + b.watts_};
  }
  friend constexpr Power operator-(Power a, Power b) {
    return Power{a.watts_ - b.watts_};
  }
  constexpr Power& operator+=(Power o) {
    watts_ += o.watts_;
    return *this;
  }
  constexpr Power& operator*=(double f) {
    watts_ *= f;
    return *this;
  }
  friend constexpr Power operator*(Power a, double f) {
    return Power{a.watts_ * f};
  }
  friend constexpr Power operator*(double f, Power a) { return a * f; }
  friend constexpr Power operator/(Power a, double f) {
    return Power{a.watts_ / f};
  }
  friend constexpr double operator/(Power a, Power b) {
    return a.watts_ / b.watts_;
  }

 private:
  explicit constexpr Power(double watts) : watts_(watts) {}
  double watts_ = 0.0;
};

/// Energy intensity of data movement — the paper's headline ratio. The
/// representation is joules per byte; `joules_per_gb()` reports the J/GB
/// figure the paper quotes (decimal gigabytes, matching `kBytesPerGigabyte`).
class JoulesPerByte {
 public:
  constexpr JoulesPerByte() = default;

  static constexpr JoulesPerByte joules_per_byte(double v) {
    return JoulesPerByte{v};
  }
  static constexpr JoulesPerByte joules_per_gb(double v) {
    return JoulesPerByte{v / kBytesPerGigabyte};
  }
  static constexpr JoulesPerByte zero() { return JoulesPerByte{0.0}; }

  constexpr double joules_per_byte() const { return jpb_; }
  constexpr double joules_per_gb() const { return jpb_ * kBytesPerGigabyte; }

  friend constexpr auto operator<=>(JoulesPerByte, JoulesPerByte) = default;

  friend constexpr JoulesPerByte operator+(JoulesPerByte a, JoulesPerByte b) {
    return JoulesPerByte{a.jpb_ + b.jpb_};
  }
  friend constexpr JoulesPerByte operator-(JoulesPerByte a, JoulesPerByte b) {
    return JoulesPerByte{a.jpb_ - b.jpb_};
  }
  friend constexpr JoulesPerByte operator*(JoulesPerByte a, double f) {
    return JoulesPerByte{a.jpb_ * f};
  }
  friend constexpr JoulesPerByte operator*(double f, JoulesPerByte a) {
    return a * f;
  }
  friend constexpr double operator/(JoulesPerByte a, JoulesPerByte b) {
    return a.jpb_ / b.jpb_;
  }

 private:
  explicit constexpr JoulesPerByte(double jpb) : jpb_(jpb) {}
  double jpb_ = 0.0;
};

// ---------------------------------------------------------------------------
// Cross-dimension algebra. Each operator reproduces the exact floating-point
// expression the pre-units code used at the corresponding call sites, so
// converting a site is a refactor, not a numerical change.
// ---------------------------------------------------------------------------

/// Average rate of moving `b` bytes over duration `t`
/// (`bytes * 8e9 / ns`, exact for the int64 inputs; zero for empty windows).
constexpr BitRate operator/(Bytes b, sim::SimTime t) {
  if (t.ns() <= 0) return BitRate::zero();
  return BitRate::bps(static_cast<double>(b.count()) * kBitsPerByteF *
                      kNanosPerSecond / static_cast<double>(t.ns()));
}

/// Serialization delay of `b` bytes on a link of rate `r`. Identical
/// arithmetic to `sim::serialization_delay` (which remains the low-level
/// spelling for raw-count call sites).
constexpr sim::SimTime operator/(Bytes b, BitRate r) {
  return sim::serialization_delay(b.count(), r.bps());
}

/// Energy spent holding power `p` for duration `t` (`watts * t.sec()`).
constexpr Energy operator*(Power p, sim::SimTime t) {
  return Energy::joules(p.watts() * t.sec());
}
constexpr Energy operator*(sim::SimTime t, Power p) { return p * t; }

/// Average power of spending energy `e` over duration `t`.
constexpr Power operator/(Energy e, sim::SimTime t) {
  return Power::watts(e.joules() / t.sec());
}

/// Energy intensity of moving `b` bytes at cost `e`.
constexpr JoulesPerByte operator/(Energy e, Bytes b) {
  return JoulesPerByte::joules_per_byte(e.joules() /
                                        static_cast<double>(b.count()));
}

/// Energy per byte spent at power `p` while moving data at rate `r`
/// (`watts / (bytes per second)`).
constexpr JoulesPerByte operator/(Power p, BitRate r) {
  return JoulesPerByte::joules_per_byte(p.watts() /
                                        (r.bps() / kBitsPerByteF));
}

// ---------------------------------------------------------------------------
// Compile-time dimension checks. `can_add<A, B>` / `can_multiply<A, B>` /
// `can_divide<A, B>` detect whether the algebra admits an expression; the
// static_asserts below pin the intended shape of the algebra so a future
// operator addition that opens an unintended dimensional hole fails right
// here, in the header that introduced it.
// ---------------------------------------------------------------------------

namespace detail {
template <class A, class B, class = void>
struct addable : std::false_type {};
template <class A, class B>
struct addable<A, B,
               std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct multipliable : std::false_type {};
template <class A, class B>
struct multipliable<
    A, B, std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct dividable : std::false_type {};
template <class A, class B>
struct dividable<A, B,
                 std::void_t<decltype(std::declval<A>() / std::declval<B>())>>
    : std::true_type {};
}  // namespace detail

template <class A, class B>
inline constexpr bool can_add = detail::addable<A, B>::value;
template <class A, class B>
inline constexpr bool can_multiply = detail::multipliable<A, B>::value;
template <class A, class B>
inline constexpr bool can_divide = detail::dividable<A, B>::value;

static_assert(can_add<Bytes, Bytes> && !can_add<Bytes, Bits>,
              "bytes and bits must not add");
static_assert(!can_add<Energy, Power>, "energy and power must not add");
static_assert(!can_add<BitRate, PacketRate>,
              "bit rate and packet rate must not add");
static_assert(can_divide<Energy, Bytes> && can_divide<Bytes, BitRate> &&
                  can_divide<Bytes, sim::SimTime>,
              "the paper's derived ratios must exist");
static_assert(can_multiply<Power, sim::SimTime> &&
                  !can_multiply<Energy, sim::SimTime>,
              "power integrates over time; energy does not");
static_assert(!can_divide<sim::SimTime, BitRate> &&
                  !can_multiply<Bytes, BitRate>,
              "only bytes / rate is a serialization delay");

static_assert(std::is_trivially_copyable_v<Bytes> &&
                  std::is_trivially_copyable_v<Bits> &&
                  std::is_trivially_copyable_v<BitRate> &&
                  std::is_trivially_copyable_v<PacketRate> &&
                  std::is_trivially_copyable_v<Energy> &&
                  std::is_trivially_copyable_v<Power> &&
                  std::is_trivially_copyable_v<JoulesPerByte>,
              "unit types must stay register-sized value types");

// ---------------------------------------------------------------------------
// Literals: `using namespace greencc::units::literals;` then `9_gbps`,
// `1500_bytes`, `50_mW`, `1_MiB`, ...
// ---------------------------------------------------------------------------

namespace literals {

constexpr Bytes operator""_bytes(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v)};
}
constexpr Bytes operator""_KiB(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v) * 1024};
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v) * 1024 * 1024};
}
constexpr Bits operator""_bits(unsigned long long v) {
  return Bits{static_cast<std::int64_t>(v)};
}

constexpr BitRate operator""_bps(long double v) {
  return BitRate::bps(static_cast<double>(v));
}
constexpr BitRate operator""_bps(unsigned long long v) {
  return BitRate::bps(static_cast<double>(v));
}
constexpr BitRate operator""_mbps(long double v) {
  return BitRate::mbps(static_cast<double>(v));
}
constexpr BitRate operator""_mbps(unsigned long long v) {
  return BitRate::mbps(static_cast<double>(v));
}
constexpr BitRate operator""_gbps(long double v) {
  return BitRate::gbps(static_cast<double>(v));
}
constexpr BitRate operator""_gbps(unsigned long long v) {
  return BitRate::gbps(static_cast<double>(v));
}

constexpr PacketRate operator""_pps(long double v) {
  return PacketRate::pps(static_cast<double>(v));
}
constexpr PacketRate operator""_pps(unsigned long long v) {
  return PacketRate::pps(static_cast<double>(v));
}

constexpr Energy operator""_J(long double v) {
  return Energy::joules(static_cast<double>(v));
}
constexpr Energy operator""_J(unsigned long long v) {
  return Energy::joules(static_cast<double>(v));
}
constexpr Energy operator""_mJ(long double v) {
  return Energy::millijoules(static_cast<double>(v));
}
constexpr Energy operator""_mJ(unsigned long long v) {
  return Energy::millijoules(static_cast<double>(v));
}

constexpr Power operator""_W(long double v) {
  return Power::watts(static_cast<double>(v));
}
constexpr Power operator""_W(unsigned long long v) {
  return Power::watts(static_cast<double>(v));
}
constexpr Power operator""_mW(long double v) {
  return Power::milliwatts(static_cast<double>(v));
}
constexpr Power operator""_mW(unsigned long long v) {
  return Power::milliwatts(static_cast<double>(v));
}

}  // namespace literals

}  // namespace greencc::units
